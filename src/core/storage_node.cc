#include "src/core/storage_node.h"

#include <algorithm>
#include <cstring>

#include "src/atm/wire.h"

namespace pegasus::core {

namespace {
constexpr int64_t kRecordHeader = 12;  // u32 length + i64 arrival timestamp
}

StorageNode::StorageNode(atm::Network* network, atm::Switch* sw, int port, pfs::PfsConfig config,
                         const std::string& name, int64_t link_bps)
    : sim_(sw->simulator()),
      endpoint_(network->AddEndpoint(name, sw, port, link_bps)),
      transport_(endpoint_),
      server_(sw->simulator(), config) {}

pfs::FileId StorageNode::SeedContinuousFile(int records, int record_bytes,
                                            sim::DurationNs cadence) {
  const pfs::FileId file = server_.CreateFile(pfs::FileType::kContinuous);
  // Build the whole title in one buffer and issue a single write: the file
  // server snapshots each block's base content when a write is *issued*, so
  // many same-instant writes straddling shared blocks would clobber each
  // other when their commits run.
  std::vector<uint8_t> all;
  all.reserve(static_cast<size_t>(records) * static_cast<size_t>(kRecordHeader + record_bytes));
  int64_t offset = 0;
  sim::TimeNs media_ts = sim_->now();
  for (int i = 0; i < records; ++i) {
    atm::WireWriter w;
    w.PutU32(static_cast<uint32_t>(record_bytes));
    w.PutI64(media_ts);
    std::vector<uint8_t> record = w.Take();
    record.resize(static_cast<size_t>(kRecordHeader + record_bytes), static_cast<uint8_t>(i));
    all.insert(all.end(), record.begin(), record.end());
    if (i % 25 == 0) {
      server_.AppendIndexEntry(file, media_ts, offset);
    }
    offset += kRecordHeader + record_bytes;
    media_ts += cadence;
  }
  server_.Write(file, 0, std::move(all), [](bool) {});
  return file;
}

pfs::FileId StorageNode::StartRecording(atm::Vci data_vci, atm::Vci control_vci,
                                        uint32_t stream_id) {
  const pfs::FileId file = server_.CreateFile(pfs::FileType::kContinuous);
  RecordingState state;
  state.file = file;
  state.stream_id = stream_id;
  state.control_vci = control_vci;
  recordings_[data_vci] = state;
  control_to_data_[control_vci] = data_vci;

  transport_.SetHandler(data_vci, [this](atm::Vci vci, std::vector<uint8_t> message,
                                         sim::TimeNs) { OnData(vci, std::move(message)); });
  transport_.SetHandler(control_vci,
                        [this](atm::Vci vci, std::vector<uint8_t> message, sim::TimeNs) {
                          auto msg = dev::ControlMessage::Parse(message);
                          if (msg.has_value()) {
                            OnControl(vci, *msg);
                          }
                        });
  return file;
}

void StorageNode::OnData(atm::Vci vci, std::vector<uint8_t> message) {
  auto it = recordings_.find(vci);
  if (it == recordings_.end()) {
    return;
  }
  RecordingState& state = it->second;
  atm::WireWriter w;
  w.PutU32(static_cast<uint32_t>(message.size()));
  w.PutI64(sim_->now());
  std::vector<uint8_t> record = w.Take();
  record.insert(record.end(), message.begin(), message.end());
  server_.Write(state.file, state.offset, std::move(record), [](bool) {});
  state.offset += kRecordHeader + static_cast<int64_t>(message.size());
  ++records_recorded_;
}

void StorageNode::OnControl(atm::Vci vci, const dev::ControlMessage& message) {
  auto data_it = control_to_data_.find(vci);
  if (data_it == control_to_data_.end()) {
    return;
  }
  auto rec_it = recordings_.find(data_it->second);
  if (rec_it == recordings_.end()) {
    return;
  }
  RecordingState& state = rec_it->second;
  switch (message.type) {
    case dev::ControlType::kSyncMark:
    case dev::ControlType::kIndexMark:
      // The control stream drives the index: media time -> byte offset.
      server_.AppendIndexEntry(state.file, message.media_ts, state.offset);
      break;
    case dev::ControlType::kStop:
      StopRecording(data_it->second, []() {});
      break;
    default:
      break;
  }
}

int64_t StorageNode::StopRecording(atm::Vci data_vci, std::function<void()> synced) {
  auto it = recordings_.find(data_vci);
  if (it == recordings_.end()) {
    sim_->ScheduleAfter(0, std::move(synced));
    return 0;
  }
  const int64_t bytes = it->second.offset;
  transport_.ClearHandler(data_vci);
  transport_.ClearHandler(it->second.control_vci);
  control_to_data_.erase(it->second.control_vci);
  recordings_.erase(it);
  server_.Sync(std::move(synced));
  return bytes;
}

bool StorageNode::StartPlayback(pfs::FileId file, atm::Vci out_vci, double speed,
                                sim::TimeNs from_ts) {
  if (server_.FileSize(file) <= 0 || speed <= 0.0) {
    return false;
  }
  PlaybackState state;
  state.out_vci = out_vci;
  state.speed = speed;
  state.running = true;
  state.next_send = sim_->now();
  state.generation = next_playback_generation_++;
  if (from_ts > 0) {
    auto offset = server_.LookupIndex(file, from_ts);
    if (offset.has_value()) {
      state.offset = *offset;
    }
  }
  playbacks_[file] = state;
  PlayNext(file, state.generation);
  return true;
}

void StorageNode::StopPlayback(pfs::FileId file) { playbacks_.erase(file); }

void StorageNode::SetPlayoutPaceBps(pfs::FileId file, int64_t bps) {
  if (bps > 0) {
    playout_pace_bps_[file] = bps;
  } else {
    playout_pace_bps_.erase(file);
  }
}

int64_t StorageNode::PlayoutPaceBps(pfs::FileId file) const {
  auto it = playout_pace_bps_.find(file);
  return it == playout_pace_bps_.end() ? 0 : it->second;
}

StorageNode::PlaybackState* StorageNode::LivePlayback(pfs::FileId file, uint64_t generation) {
  auto it = playbacks_.find(file);
  if (it == playbacks_.end() || it->second.generation != generation) {
    return nullptr;
  }
  return &it->second;
}

void StorageNode::PlayNext(pfs::FileId file, uint64_t generation) {
  PlaybackState* state = LivePlayback(file, generation);
  if (state == nullptr || !state->running) {
    return;
  }
  const int64_t file_size = server_.FileSize(file);
  if (state->offset + kRecordHeader > file_size) {
    playbacks_.erase(file);  // end of stream
    return;
  }
  // Parse the next record from the read-ahead window if it is fully there.
  const int64_t in_buffer_off = state->offset - state->buffer_base;
  const auto buffered = static_cast<int64_t>(state->buffer.size());
  bool have_record = false;
  uint32_t len = 0;
  sim::TimeNs media_ts = 0;
  if (in_buffer_off >= 0 && in_buffer_off + kRecordHeader <= buffered) {
    const uint8_t* p = state->buffer.data() + in_buffer_off;
    len = static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
          static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
    std::memcpy(&media_ts, p + 4, 8);
    have_record = in_buffer_off + kRecordHeader + len <= buffered;
  }
  if (!have_record) {
    // Refill the window from the current offset: one large realtime read
    // instead of a disk visit per record.
    constexpr int64_t kReadAhead = 128 << 10;
    const int64_t want = std::min(kReadAhead, file_size - state->offset);
    const int64_t from = state->offset;
    server_.ReadRealtime(file, from, want,
                         [this, file, generation, from](bool ok, std::vector<uint8_t> data) {
                           PlaybackState* st = LivePlayback(file, generation);
                           if (st == nullptr) {
                             return;
                           }
                           if (!ok) {
                             playbacks_.erase(file);
                             return;
                           }
                           st->buffer = std::move(data);
                           st->buffer_base = from;
                           PlayNext(file, generation);
                         });
    return;
  }
  if (len == 0) {
    playbacks_.erase(file);  // corrupt or truncated tail
    return;
  }
  std::vector<uint8_t> payload(
      state->buffer.begin() + in_buffer_off + kRecordHeader,
      state->buffer.begin() + in_buffer_off + kRecordHeader + static_cast<int64_t>(len));
  // Re-time: preserve the recorded cadence, scaled by speed — but never
  // faster than the granted play-out rate, so a degraded stream's records
  // leave at the renegotiated pace rather than bursting past it.
  sim::DurationNs gap = 0;
  const bool had_cadence = state->last_media_ts >= 0;
  if (had_cadence) {
    gap = static_cast<sim::DurationNs>(
        static_cast<double>(media_ts - state->last_media_ts) / state->speed);
  }
  const int64_t pace = PlayoutPaceBps(file);
  if (pace > 0) {
    gap = std::max(gap, sim::TransmissionTime(kRecordHeader + len, pace));
  }
  state->last_media_ts = media_ts;
  // The record is due one (pace-stretched) cadence gap after its
  // predecessor; if a read-ahead refill stalled past that, the play-out is
  // late by the disk's fault — the quality metric the monitor watches. The
  // first record has no cadence yet, so its start-up read is not a miss.
  const sim::TimeNs due = state->next_send + gap;
  if (had_cadence) {
    server_.stream_quality().Record(sim_->now() - due);
  }
  state->next_send = std::max(due, sim_->now());
  state->offset += kRecordHeader + static_cast<int64_t>(len);
  const sim::TimeNs at = state->next_send;
  const atm::Vci vci = state->out_vci;
  sim_->ScheduleAt(at, [this, file, generation, vci, payload = std::move(payload)]() {
    if (LivePlayback(file, generation) == nullptr) {
      return;
    }
    transport_.Send(vci, payload);
    ++records_played_;
    PlayNext(file, generation);
  });
}

}  // namespace pegasus::core
