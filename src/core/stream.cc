#include "src/core/stream.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <utility>

#include "src/core/compute_node.h"
#include "src/core/system.h"
#include "src/devices/audio.h"
#include "src/devices/display.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/scheduler.h"

namespace pegasus::core {

namespace {

// Spare guaranteed-CPU utilisation on a host kernel.
double CpuHeadroom(nemesis::Kernel* kernel) {
  return kernel->scheduler()->Capacity() - kernel->scheduler()->AdmittedUtilization();
}

// `slice` scaled into a proportionally fair share, with a small safety
// margin against floating-point admission arithmetic.
sim::DurationNs ScaledSlice(sim::DurationNs slice, double ratio) {
  if (ratio <= 0.0) {
    return 0;
  }
  return static_cast<sim::DurationNs>(static_cast<double>(slice) * ratio * 0.999);
}

// One CPU contract of the pipeline: an end host's protocol handler or a
// compute stage, identified by the session end index (0 = source host,
// 1 = sink host, 2+k = the stage terminating leg k).
struct CpuEndCheck {
  int end = 0;
  nemesis::Kernel* kernel = nullptr;
  nemesis::QosParams wanted;
  // Utilisation this stream already holds on the kernel (renegotiation).
  double old_util = 0.0;
  AdmitFailure kind = AdmitFailure::kNone;
  const char* what = "";
  // Outputs.
  nemesis::QosParams clamped;
  bool failed = false;
};

// Joint CPU admission: contracts are grouped by kernel; a kernel whose
// summed demand exceeds its headroom (plus whatever the stream already
// holds there) scales every demand on it proportionally, in one pass —
// no first-failing-end-only counters.
void JointCpuCheck(std::vector<CpuEndCheck>* ends) {
  for (CpuEndCheck& e : *ends) {
    e.clamped = e.wanted;
  }
  std::vector<nemesis::Kernel*> seen;
  for (const CpuEndCheck& e : *ends) {
    if (e.kernel == nullptr || std::count(seen.begin(), seen.end(), e.kernel) > 0) {
      continue;
    }
    seen.push_back(e.kernel);
    double budget = CpuHeadroom(e.kernel);
    double total = 0.0;
    for (const CpuEndCheck& other : *ends) {
      if (other.kernel == e.kernel) {
        budget += other.old_util;
        total += other.wanted.Utilization();
      }
    }
    if (total <= budget + 1e-9) {
      continue;
    }
    const double ratio = budget > 0.0 ? budget / total : 0.0;
    for (CpuEndCheck& other : *ends) {
      if (other.kernel == e.kernel && other.wanted.slice > 0) {
        other.clamped.slice = ScaledSlice(other.wanted.slice, ratio);
        other.failed = true;
      }
    }
  }
}

// Joint per-link bandwidth admission over all legs of a pipeline. Two legs
// may share a directed link (a chain that revisits a switch), so demand is
// accumulated per link; each overcommitted link scales the legs crossing it
// proportionally, which keeps the clamped set jointly admissible.
// `old_contrib` is the reservation each leg already holds (handed back for
// the purpose of the check; all zero on first admission).
void JointLinkCheck(const atm::Network& network,
                    const std::vector<std::vector<atm::Link*>>& leg_links,
                    const std::vector<int64_t>& wanted, const std::vector<int64_t>& old_contrib,
                    std::vector<int64_t>* clamped) {
  std::map<atm::Link*, int64_t> demand;
  std::map<atm::Link*, int64_t> add_back;
  for (size_t i = 0; i < leg_links.size(); ++i) {
    for (atm::Link* l : leg_links[i]) {
      if (wanted[i] > 0) {
        demand[l] += wanted[i];
      }
      add_back[l] += old_contrib[i];
    }
  }
  clamped->assign(wanted.begin(), wanted.end());
  for (size_t i = 0; i < leg_links.size(); ++i) {
    if (wanted[i] <= 0) {
      continue;
    }
    for (atm::Link* l : leg_links[i]) {
      const int64_t available =
          std::max<int64_t>(0, network.AvailableBandwidth(l) + add_back[l]);
      const int64_t total = demand[l];
      if (total > available) {
        // 128-bit intermediate: wanted * available can exceed int64 for
        // absurd-but-legal specs, and signed overflow is UB.
        const int64_t share = static_cast<int64_t>(
            static_cast<__int128>(wanted[i]) * available / total);
        (*clamped)[i] = std::min((*clamped)[i], share);
      }
    }
  }
}

// The ATM endpoint a multicast sink receives on: an explicit endpoint wins,
// a storage leaf listens on the file server, a display leaf on its device.
atm::Endpoint* McastSinkEndpoint(const MulticastSink& sink) {
  if (sink.endpoint != nullptr) {
    return sink.endpoint;
  }
  if (sink.storage != nullptr) {
    return sink.storage->endpoint();
  }
  if (sink.ws != nullptr && sink.display != nullptr) {
    return sink.ws->device_endpoint(sink.display);
  }
  return nullptr;
}

std::string JoinDetails(const std::vector<std::string>& details) {
  std::string joined;
  for (const std::string& d : details) {
    if (!joined.empty()) {
      joined += "; ";
    }
    joined += d;
  }
  return joined;
}

// Assembles the pipeline's CPU contracts in path order — source host, every
// compute stage, sink host — for the joint per-kernel check. `*_old_util` is
// what the stream already holds (all zero on first admission).
std::vector<CpuEndCheck> BuildCpuEnds(nemesis::Kernel* source_kernel,
                                      const nemesis::QosParams& source_wanted,
                                      double source_old_util, nemesis::Kernel* sink_kernel,
                                      const nemesis::QosParams& sink_wanted,
                                      double sink_old_util,
                                      const std::vector<nemesis::Kernel*>& stage_kernels,
                                      const std::vector<nemesis::QosParams>& stage_wanted,
                                      const std::vector<double>& stage_old_util) {
  std::vector<CpuEndCheck> cpu_ends;
  CpuEndCheck source;
  source.end = StreamSession::kSourceEnd;
  source.kernel = source_kernel;
  source.wanted = source_wanted;
  source.old_util = source_old_util;
  source.kind = AdmitFailure::kSourceCpu;
  source.what = "source";
  cpu_ends.push_back(source);
  for (size_t k = 0; k < stage_kernels.size(); ++k) {
    CpuEndCheck stage;
    stage.end = 2 + static_cast<int>(k);
    stage.kernel = stage_kernels[k];
    stage.wanted = stage_wanted[k];
    stage.old_util = stage_old_util[k];
    stage.kind = AdmitFailure::kComputeCpu;
    stage.what = "compute stage";
    cpu_ends.push_back(stage);
  }
  CpuEndCheck sink;
  sink.end = StreamSession::kSinkEnd;
  sink.kernel = sink_kernel;
  sink.wanted = sink_wanted;
  sink.old_util = sink_old_util;
  sink.kind = AdmitFailure::kSinkCpu;
  sink.what = "sink";
  cpu_ends.push_back(sink);
  return cpu_ends;
}

// The one joint cross-layer admission pass shared by first admission
// (StreamBuilder::Open) and renegotiation (StreamSession::RenegotiateImpl),
// so counter-offer fixes cannot diverge between the two. Checks every layer
// — bandwidth jointly per link over all legs, CPU grouped per kernel, disk
// — collecting EVERY failure and materialising one jointly-admissible
// counter-offer with self-contained legs.
struct JointAdmissionRequest {
  const atm::Network* network = nullptr;
  size_t nlegs = 0;
  size_t nstages = 0;
  // Per-leg traversed links and demands; `old_bps` is the reservation each
  // leg already holds (all zero on first admission). Renegotiations whose
  // bandwidth is unchanged skip the link walk entirely (check_network
  // false, leg_links may be empty).
  bool check_network = true;
  const std::vector<std::vector<atm::Link*>>* leg_links = nullptr;
  std::vector<int64_t> wanted_bps;
  std::vector<int64_t> old_bps;
  // A point-to-point spec without an explicit leg entry takes bandwidth
  // clamps on the stream-wide knob instead of a materialised leg.
  bool counter_streamwide = false;
  // CPU contracts in path order (BuildCpuEnds).
  std::vector<CpuEndCheck> cpu_ends;
  // Resolved per-stage CPU demands, for materialising counter legs.
  std::vector<nemesis::QosParams> stage_cpu;
  // Disk: headroom as seen by this stream (its current share added back).
  bool check_disk = false;
  int64_t disk_wanted = 0;
  int64_t disk_available = 0;
};

// Returns true when every layer accepts. Otherwise fills `report` — verdict
// (counter-offer when every failing layer still has something to give),
// every failure in path order, joined detail — and returns false. `counter`
// starts as the spec the caller was asked for.
bool RunJointAdmission(JointAdmissionRequest& req, StreamSpec counter,
                       AdmissionReport* report) {
  std::vector<AdmitFailure> failures;
  std::vector<std::string> details;
  bool viable = true;
  auto fail = [&](AdmitFailure kind, const std::string& text, bool still_viable) {
    failures.push_back(kind);
    details.push_back(text);
    viable = viable && still_viable;
  };
  // Counter legs are materialised with the resolved demands so the offer is
  // self-contained: resubmitting it verbatim never silently drops a stage
  // contract the caller did not mention.
  auto counter_leg_slot = [&](size_t i) -> LegSpec* {
    while (counter.legs.size() < req.nlegs) {
      const size_t j = counter.legs.size();
      LegSpec filled;
      filled.bandwidth_bps = req.wanted_bps[j];
      if (j < req.nstages) {
        filled.compute_cpu = req.stage_cpu[j];
      }
      counter.legs.push_back(filled);
    }
    return &counter.legs[i];
  };

  // 1. Network bandwidth, jointly on every link of every leg.
  std::vector<int64_t> clamped_bps = req.wanted_bps;
  if (req.check_network) {
    JointLinkCheck(*req.network, *req.leg_links, req.wanted_bps, req.old_bps, &clamped_bps);
  }
  for (size_t i = 0; i < req.nlegs; ++i) {
    if (clamped_bps[i] >= req.wanted_bps[i]) {
      continue;
    }
    if (req.counter_streamwide) {
      counter.bandwidth_bps = clamped_bps[i];
    } else {
      counter_leg_slot(i)->bandwidth_bps = clamped_bps[i];
    }
    fail(AdmitFailure::kNetworkBandwidth,
         "leg " + std::to_string(i) + ": a traversed link lacks spare capacity",
         clamped_bps[i] > 0);
  }

  // 2. CPU at both ends and every compute stage, grouped per kernel.
  for (const CpuEndCheck& e : req.cpu_ends) {
    if (e.wanted.slice > 0 && e.kernel == nullptr) {
      report->verdict = AdmitVerdict::kRejected;
      report->failure = e.kind;
      report->detail = "no kernel attached to the host";
      return false;
    }
  }
  JointCpuCheck(&req.cpu_ends);
  for (const CpuEndCheck& e : req.cpu_ends) {
    if (!e.failed) {
      continue;
    }
    if (e.end == StreamSession::kSourceEnd) {
      counter.source_cpu = e.clamped;
    } else if (e.end == StreamSession::kSinkEnd) {
      // One-to-many admission carries one sink entry per leaf host, all at
      // the same per-sink demand; the joint offer must satisfy the
      // tightest of them.
      if (e.clamped.slice < counter.sink_cpu.slice) {
        counter.sink_cpu = e.clamped;
      }
    } else {
      counter_leg_slot(static_cast<size_t>(e.end - 2))->compute_cpu = e.clamped;
    }
    fail(e.kind, std::string(e.what) + " CPU demand exceeds Atropos headroom",
         e.clamped.slice > 0);
  }

  // 3. Disk rate at the file server.
  if (req.check_disk && req.disk_wanted > req.disk_available) {
    counter.disk_bps = std::max<int64_t>(req.disk_available, 0);
    fail(AdmitFailure::kDiskBandwidth, "PFS stream budget exhausted",
         req.disk_available > 0);
  }

  if (failures.empty()) {
    return true;
  }
  report->failure = failures.front();
  report->failures = std::move(failures);
  report->detail = JoinDetails(details);
  // A counter-offer is only useful if every demanded layer still has
  // something to give.
  report->verdict = viable ? AdmitVerdict::kCounterOffer : AdmitVerdict::kRejected;
  if (viable) {
    report->counter_offer = std::move(counter);
  }
  return false;
}

}  // namespace

const char* AdaptationTriggerName(AdaptationEvent::Trigger trigger) {
  switch (trigger) {
    case AdaptationEvent::Trigger::kCpuGrant:
      return "cpu-grant";
    case AdaptationEvent::Trigger::kNetworkCongestion:
      return "net-congestion";
    case AdaptationEvent::Trigger::kDiskPressure:
      return "disk-pressure";
    case AdaptationEvent::Trigger::kManual:
      return "manual";
  }
  return "unknown";
}

const char* AdmitFailureName(AdmitFailure failure) {
  switch (failure) {
    case AdmitFailure::kNone:
      return "none";
    case AdmitFailure::kEndpoint:
      return "endpoint";
    case AdmitFailure::kNoPath:
      return "no-path";
    case AdmitFailure::kNetworkBandwidth:
      return "network-bandwidth";
    case AdmitFailure::kLatency:
      return "latency";
    case AdmitFailure::kSourceCpu:
      return "source-cpu";
    case AdmitFailure::kSinkCpu:
      return "sink-cpu";
    case AdmitFailure::kComputeCpu:
      return "compute-cpu";
    case AdmitFailure::kDiskBandwidth:
      return "disk-bandwidth";
  }
  return "unknown";
}

// --- StreamSession ---

StreamSession::~StreamSession() = default;

void StreamSession::ReleaseCpuEnd(std::unique_ptr<nemesis::PeriodicDomain>* handler,
                                  nemesis::Kernel* kernel) {
  nemesis::PeriodicDomain* domain = handler->get();
  if (domain == nullptr) {
    return;
  }
  if (manager_ != nullptr) {
    manager_->Unregister(domain);
  }
  domain->Stop();
  if (kernel != nullptr && domain->kernel() == kernel) {
    kernel->RemoveDomain(domain);
  }
  // The object must outlive any pending job-release timer in the simulator;
  // Stop() made it inert, the graveyard keeps it alive.
  retired_handlers_.push_back(std::move(*handler));
}

nemesis::PeriodicDomain* StreamSession::EndHandler(int end) const {
  if (end == kSourceEnd) {
    return source_handler_.get();
  }
  if (end == kSinkEnd) {
    return sink_handler_.get();
  }
  const size_t leg = static_cast<size_t>(end - 2);
  return leg < legs_.size() ? legs_[leg].handler.get() : nullptr;
}

void StreamSession::OnGrantChanged(int end, const nemesis::GrantUpdate& update) {
  nemesis::PeriodicDomain* handler = EndHandler(end);
  if (handler == nullptr) {
    return;
  }
  // CPU across ends BEFORE the manager's move is folded in, so the logged
  // adaptation event shows the full per-layer movement of this epoch.
  const double cpu_before = GrantedCpuUtil();
  // The manager already applied the new contract through Kernel::UpdateQos;
  // reflect it in the cross-layer contract.
  if (end == kSourceEnd) {
    contract_.granted.source_cpu = handler->qos();
  } else if (end == kSinkEnd) {
    contract_.granted.sink_cpu = handler->qos();
  } else {
    const size_t leg = static_cast<size_t>(end - 2);
    if (leg < contract_.granted.legs.size()) {
      contract_.granted.legs[leg].compute_cpu = handler->qos();
    }
  }
  // Drive the adaptation plane: the steady-state share of this end's
  // long-term request becomes the end's limit fraction, and one joint
  // renegotiation moves every layer toward the min over all limits —
  // before the application hears about it, so the degradation callback
  // sees a coherent cross-layer contract. Self-limited grants (the stream's
  // own idleness, reclaimed) constrain nothing: the other layers could
  // still deliver.
  if (has_adaptation_ && active_) {
    double requested = 0.0;
    if (end == kSourceEnd) {
      requested = requested_source_cpu_.Utilization();
    } else if (end == kSinkEnd) {
      requested = requested_sink_cpu_.Utilization();
    } else {
      requested = nominal_.LegComputeCpu(static_cast<size_t>(end - 2)).Utilization();
    }
    if (requested > 0.0) {
      if (!update.self_limited) {
        cpu_end_limits_[end] =
            std::clamp(update.steady_state_util / requested, 0.0, 1.0);
      }
      Adapt(AdaptationEvent::Trigger::kCpuGrant, update.reason, cpu_before);
    }
  }
  if (degrade_cb_) {
    degrade_cb_(contract_);
  }
}

double StreamSession::CombinedLimit() const {
  double limit = std::min(app_limit_, disk_limit_);
  for (const auto& [link, link_limit] : net_link_limits_) {
    (void)link;
    limit = std::min(limit, link_limit);
  }
  for (const auto& [end, end_limit] : cpu_end_limits_) {
    (void)end;
    limit = std::min(limit, end_limit);
  }
  return limit;
}

bool StreamSession::EndIsManaged(int end) const {
  if (manager_ == nullptr) {
    return false;
  }
  nemesis::PeriodicDomain* handler = EndHandler(end);
  return handler != nullptr && handler->kernel() != nullptr &&
         manager_->kernel() == handler->kernel();
}

double StreamSession::GrantedCpuUtil() const {
  double total = contract_.granted.source_cpu.Utilization() +
                 contract_.granted.sink_cpu.Utilization();
  for (size_t k = 0; k + 1 < legs_.size(); ++k) {
    total += contract_.granted.LegComputeCpu(k).Utilization();
  }
  return total;
}

int64_t StreamSession::GrantedNetBps() const {
  int64_t total = 0;
  for (const Leg& leg : legs_) {
    total += leg.granted_bps;
  }
  return total;
}

int64_t StreamSession::GrantedDiskBps() const {
  return disk_reserved_ ? contract_.granted.disk_bps : 0;
}

namespace {
// Oldest adaptation events are dropped past this; a managed session logs
// one event per manager epoch, which is unbounded over its lifetime.
constexpr size_t kAdaptationLogCap = 256;
}  // namespace

void StreamSession::LogAdaptationEvent(const AdaptationEvent& event) {
  adaptations_applied_ += event.applied ? 1 : 0;
  adaptations_held_ += event.held ? 1 : 0;
  if (adaptation_log_.size() >= kAdaptationLogCap) {
    adaptation_log_.erase(adaptation_log_.begin());
  }
  adaptation_log_.push_back(event);
}

void StreamSession::ApplySourcePacing() {
  if (legs_.empty()) {
    return;
  }
  // A zero rate un-paces (best effort rides at line rate), exactly like
  // the audio and storage branches below.
  const int64_t net = legs_.front().granted_bps;
  if (source_camera_ != nullptr) {
    source_camera_->set_pace_bps(net);
  }
  if (source_audio_ != nullptr) {
    source_audio_->set_pace_bps(net);
  }
  if (storage_ != nullptr && !recording_ && file_ >= 0) {
    // Play-out rides both the network and disk reservations; pace to the
    // tighter of the two (disk_bps is bytes/s, the pace is wire bits/s).
    int64_t pace = net;
    const int64_t disk_wire_bps = contract_.granted.disk_bps * 8;
    if (disk_wire_bps > 0 && (pace <= 0 || disk_wire_bps < pace)) {
      pace = disk_wire_bps;
    }
    storage_->SetPlayoutPaceBps(file_, pace);
  }
}

void StreamSession::BindAdaptationHooks() {
  if (!has_adaptation_) {
    return;
  }
  atm::Network& network = system_->network();
  for (const Leg& leg : legs_) {
    if (leg.vc < 0) {
      continue;
    }
    network.SetCongestionHandler(
        leg.vc, [this](atm::VcId, const atm::Link* link, double severity) {
          if (!active_) {
            return;
          }
          if (severity > 0.0) {
            net_link_limits_[link] = std::clamp(1.0 - severity, 0.0, 1.0);
          } else {
            net_link_limits_.erase(link);  // this link's condition cleared
          }
          Adapt(AdaptationEvent::Trigger::kNetworkCongestion,
                severity > 0.0 ? nemesis::GrantReason::kContention
                               : nemesis::GrantReason::kRestore);
        });
  }
  RebindDiskPressureHook();
}

void StreamSession::RebindDiskPressureHook() {
  if (!has_adaptation_ || storage_ == nullptr || file_ < 0 || !disk_reserved_) {
    return;
  }
  storage_->server()->SetStreamPressureCallback(file_, [this](double fraction) {
    if (!active_) {
      return;
    }
    disk_limit_ = std::clamp(fraction, 0.0, 1.0);
    Adapt(AdaptationEvent::Trigger::kDiskPressure,
          fraction < 1.0 ? nemesis::GrantReason::kContention
                         : nemesis::GrantReason::kRestore);
  });
}

StreamSpec StreamSession::ScaledSpec(double fraction) const {
  StreamSpec spec = contract_.granted;
  auto scaled_bps = [fraction](int64_t nominal) {
    return nominal > 0
               ? static_cast<int64_t>(std::llround(static_cast<double>(nominal) * fraction))
               : nominal;
  };
  auto scaled_cpu = [fraction](nemesis::QosParams nominal) {
    nominal.slice =
        static_cast<sim::DurationNs>(static_cast<double>(nominal.slice) * fraction);
    return nominal;
  };
  if (policy_.mode == AdaptationMode::kFrameRateScaling) {
    spec.frame_rate = nominal_.frame_rate * fraction;
  }
  const size_t nlegs = legs_.size();
  if (nlegs == 1) {
    spec.bandwidth_bps = scaled_bps(nominal_.bandwidth_bps);
    if (!spec.legs.empty()) {
      spec.legs[0].bandwidth_bps = spec.bandwidth_bps;
    }
  } else {
    if (spec.legs.size() < nlegs) {
      spec.legs.resize(nlegs);
    }
    for (size_t i = 0; i < nlegs; ++i) {
      spec.legs[i].bandwidth_bps = scaled_bps(nominal_.LegBandwidthBps(i));
    }
  }
  // CPU moves with the stream except where the manager owns the slice: a
  // managed end keeps the manager's current grant (contract_.granted).
  for (size_t k = 0; k + 1 < nlegs; ++k) {
    if (EndIsManaged(2 + static_cast<int>(k))) {
      continue;
    }
    const nemesis::QosParams nominal_cpu = nominal_.LegComputeCpu(k);
    if (nominal_cpu.slice > 0) {
      spec.legs[k].compute_cpu = scaled_cpu(nominal_cpu);
    }
  }
  if (!EndIsManaged(kSourceEnd) && nominal_.source_cpu.slice > 0) {
    spec.source_cpu = scaled_cpu(nominal_.source_cpu);
  }
  if (!EndIsManaged(kSinkEnd) && nominal_.sink_cpu.slice > 0) {
    spec.sink_cpu = scaled_cpu(nominal_.sink_cpu);
  }
  spec.disk_bps = scaled_bps(nominal_.disk_bps);
  return spec;
}

AdmissionReport StreamSession::AdaptTo(double target_fraction) {
  if (!has_adaptation_) {
    AdmissionReport report;
    report.verdict = AdmitVerdict::kRejected;
    report.detail = "no adaptation policy attached";
    return report;
  }
  app_limit_ = std::clamp(target_fraction, 0.0, 1.0);
  return Adapt(AdaptationEvent::Trigger::kManual,
               app_limit_ >= current_fraction_ ? nemesis::GrantReason::kRestore
                                               : nemesis::GrantReason::kContention);
}

AdmissionReport StreamSession::Adapt(AdaptationEvent::Trigger trigger,
                                     nemesis::GrantReason reason) {
  return Adapt(trigger, reason, GrantedCpuUtil());
}

AdmissionReport StreamSession::Adapt(AdaptationEvent::Trigger trigger,
                                     nemesis::GrantReason reason, double cpu_util_before) {
  AdaptationEvent event;
  event.trigger = trigger;
  event.reason = reason;
  event.cpu_util_before = cpu_util_before;
  event.net_bps_before = GrantedNetBps();
  event.disk_bps_before = GrantedDiskBps();

  // Reclaim signals never updated a limit, so the combined target is
  // unchanged and hysteresis holds the contracts — the stream is idle by
  // choice, not degraded.
  const double target = std::clamp(CombinedLimit(), policy_.floor, 1.0);
  double next = current_fraction_ + policy_.smoothing * (target - current_fraction_);
  next = std::clamp(next, policy_.floor, 1.0);
  event.target_fraction = next;

  AdmissionReport report;
  if (policy_.mode == AdaptationMode::kHold ||
      std::abs(next - current_fraction_) < policy_.hysteresis) {
    event.held = true;
    event.cpu_util_after = GrantedCpuUtil();
    event.net_bps_after = event.net_bps_before;
    event.disk_bps_after = event.disk_bps_before;
    LogAdaptationEvent(event);
    report.verdict = AdmitVerdict::kAccepted;
    report.detail = "held";
    return report;
  }

  report = RenegotiateImpl(ScaledSpec(next), /*update_requests=*/false);
  if (report.ok()) {
    current_fraction_ = next;
  }
  event.applied = report.ok();
  event.cpu_util_after = GrantedCpuUtil();
  event.net_bps_after = GrantedNetBps();
  event.disk_bps_after = GrantedDiskBps();
  LogAdaptationEvent(event);
  // CPU-grant triggers fire the callback from OnGrantChanged (after the
  // manager's move is folded in); the other triggers report here, so the
  // application always sees the post-adaptation contract.
  if (report.ok() && trigger != AdaptationEvent::Trigger::kCpuGrant && degrade_cb_) {
    degrade_cb_(contract_);
  }
  return report;
}

AdmissionReport StreamSession::Renegotiate(const StreamSpec& spec) {
  return RenegotiateImpl(spec, /*update_requests=*/true);
}

AdmissionReport StreamSession::RenegotiateImpl(const StreamSpec& spec, bool update_requests) {
  AdmissionReport report;
  if (!active_) {
    report.verdict = AdmitVerdict::kRejected;
    report.failure = AdmitFailure::kEndpoint;
    report.detail = "session is closed";
    return report;
  }
  atm::Network& network = system_->network();
  const StreamSpec old = contract_.granted;
  const size_t nlegs = legs_.size();
  const size_t nstages = nlegs > 0 ? nlegs - 1 : 0;

  // Resolve the per-leg demands. For a point-to-point stream the classic
  // knobs apply; for a pipeline, entries missing from spec.legs keep the
  // leg's current grant (granted specs carry explicit legs, so editing
  // contract().granted renegotiates naturally).
  std::vector<int64_t> old_bps(nlegs);
  std::vector<int64_t> wanted_bps(nlegs);
  for (size_t i = 0; i < nlegs; ++i) {
    old_bps[i] = legs_[i].granted_bps;
    if (i < spec.legs.size() && spec.legs[i].bandwidth_bps != LegSpec::kInheritBps) {
      wanted_bps[i] = spec.legs[i].bandwidth_bps;
    } else if (nlegs == 1) {
      wanted_bps[i] = spec.bandwidth_bps;
    } else {
      wanted_bps[i] = old_bps[i];
    }
  }
  std::vector<nemesis::QosParams> old_stage_cpu(nstages);
  std::vector<nemesis::QosParams> wanted_stage_cpu(nstages);
  for (size_t k = 0; k < nstages; ++k) {
    old_stage_cpu[k] = legs_[k].handler != nullptr
                           ? legs_[k].handler->qos()
                           : nemesis::QosParams{0, sim::Milliseconds(100), true};
    wanted_stage_cpu[k] = k < spec.legs.size() ? spec.legs[k].compute_cpu : old_stage_cpu[k];
  }

  // ---- pre-check every layer jointly (the pass shared with first
  // admission); nothing is touched until all pass, so a refusal leaves the
  // original contract fully intact. A renegotiation that moves no
  // bandwidth skips the link walk ----
  const bool bandwidth_changed = wanted_bps != old_bps;
  std::vector<std::vector<atm::Link*>> leg_links(bandwidth_changed ? nlegs : 0);
  for (size_t i = 0; bandwidth_changed && i < nlegs; ++i) {
    const std::vector<atm::Link*>* links = network.VcLinks(legs_[i].vc);
    if (links == nullptr) {
      report.verdict = AdmitVerdict::kRejected;
      report.failure = AdmitFailure::kNoPath;
      report.detail = "a leg's VC no longer exists";
      return report;
    }
    leg_links[i] = *links;
  }
  if (spec.disk_bps > 0 && (storage_ == nullptr || file_ < 0)) {
    report.verdict = AdmitVerdict::kRejected;
    report.failure = AdmitFailure::kDiskBandwidth;
    report.detail = "disk rate demanded but no storage endpoint on the path";
    return report;
  }

  std::vector<nemesis::Kernel*> stage_kernels(nstages);
  std::vector<double> stage_old_util(nstages);
  for (size_t k = 0; k < nstages; ++k) {
    stage_kernels[k] = legs_[k].compute != nullptr ? legs_[k].compute->kernel() : nullptr;
    stage_old_util[k] = old_stage_cpu[k].Utilization();
  }
  JointAdmissionRequest req;
  req.network = &network;
  req.nlegs = nlegs;
  req.nstages = nstages;
  req.check_network = bandwidth_changed;
  req.leg_links = &leg_links;
  req.wanted_bps = wanted_bps;
  req.old_bps = old_bps;
  req.counter_streamwide =
      nlegs == 1 &&
      (spec.legs.empty() || spec.legs[0].bandwidth_bps == LegSpec::kInheritBps);
  const nemesis::QosParams no_sink_cpu{0, sim::Milliseconds(100), true};
  req.cpu_ends = BuildCpuEnds(
      source_ws_ != nullptr ? source_ws_->kernel() : nullptr, spec.source_cpu,
      source_handler_ != nullptr ? source_handler_->qos().Utilization() : 0.0,
      sink_ws_ != nullptr ? sink_ws_->kernel() : nullptr,
      multicast_ ? no_sink_cpu : spec.sink_cpu,
      sink_handler_ != nullptr ? sink_handler_->qos().Utilization() : 0.0, stage_kernels,
      wanted_stage_cpu, stage_old_util);
  if (multicast_) {
    // One sink-CPU contract per leaf host, all at the same per-sink demand
    // (BuildCpuEnds's single sink slot stays empty — a one-to-many session
    // has no sink_ws_). Leaves sharing a kernel are grouped by the joint
    // check; the counter-offer keeps the tightest clamp.
    for (const McastSinkBinding& b : mcast_sinks_) {
      if (b.sink.ws == nullptr) {
        continue;
      }
      CpuEndCheck leaf;
      leaf.end = kSinkEnd;
      leaf.kernel = b.sink.ws->kernel();
      leaf.wanted = spec.sink_cpu;
      leaf.old_util = b.handler != nullptr ? b.handler->qos().Utilization() : 0.0;
      leaf.kind = AdmitFailure::kSinkCpu;
      leaf.what = "sink";
      req.cpu_ends.push_back(leaf);
    }
  }
  req.stage_cpu = wanted_stage_cpu;
  req.check_disk = storage_ != nullptr && file_ >= 0 && spec.disk_bps != old.disk_bps;
  req.disk_wanted = spec.disk_bps;
  if (req.check_disk) {
    req.disk_available = storage_->server()->AvailableStreamBps() +
                         (disk_reserved_ ? old.disk_bps : 0);
  }
  if (!RunJointAdmission(req, spec, &report)) {
    return report;
  }

  // ---- every layer accepts: apply, decreases before increases so shared
  // links and kernels never transiently overcommit. The undo stack keeps
  // the apply all-or-nothing even if a layer refuses after the pre-check.
  std::vector<std::function<void()>> undo;
  auto rollback = [&]() {
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      (*it)();
    }
  };

  // Network.
  std::vector<size_t> net_order(nlegs);
  std::iota(net_order.begin(), net_order.end(), size_t{0});
  std::sort(net_order.begin(), net_order.end(), [&](size_t a, size_t b) {
    return wanted_bps[a] - old_bps[a] < wanted_bps[b] - old_bps[b];
  });
  for (size_t i : net_order) {
    if (wanted_bps[i] == old_bps[i]) {
      continue;
    }
    if (!network.UpdateVcQos(legs_[i].vc, atm::QosSpec{wanted_bps[i]})) {
      rollback();
      report.verdict = AdmitVerdict::kRejected;
      report.failure = AdmitFailure::kNetworkBandwidth;
      report.detail = "network re-admission refused after the joint pre-check";
      return report;
    }
    legs_[i].granted_bps = wanted_bps[i];
    undo.push_back([this, &network, i, prev = old_bps[i]]() {
      network.UpdateVcQos(legs_[i].vc, atm::QosSpec{prev});
      legs_[i].granted_bps = prev;
    });
  }

  // CPU. `request` is the long-term demand (re-)registered with the QoS
  // manager: on a forward apply the renegotiated spec, on a rollback the
  // original request the session was opened with.
  auto apply_cpu = [&](std::unique_ptr<nemesis::PeriodicDomain>* slot,
                       nemesis::Kernel* kernel, const nemesis::QosParams& qos,
                       const nemesis::QosParams& request, int end,
                       const std::string& suffix) -> bool {
    nemesis::PeriodicDomain* handler = slot->get();
    if (qos.slice <= 0) {
      if (handler != nullptr) {
        ReleaseCpuEnd(slot, kernel);
      }
      return true;
    }
    if (kernel == nullptr) {
      return false;
    }
    if (handler != nullptr && handler->kernel() != nullptr) {
      if (!kernel->UpdateQos(handler, qos)) {
        return false;
      }
      if (manager_ != nullptr && manager_->kernel() == kernel) {
        manager_->Register(handler, manager_weight_, request,
                           [this, end](const nemesis::GrantUpdate& update) {
                           OnGrantChanged(end, update);
                         });
      }
      return true;
    }
    auto domain = std::make_unique<nemesis::PeriodicDomain>(
        system_->simulator(), name_ + suffix, qos, qos.slice, qos.period);
    if (!kernel->AddDomain(domain.get())) {
      return false;
    }
    if (manager_ != nullptr && manager_->kernel() == kernel) {
      manager_->Register(domain.get(), manager_weight_, request,
                         [this, end](const nemesis::GrantUpdate& update) {
                           OnGrantChanged(end, update);
                         });
    }
    *slot = std::move(domain);
    return true;
  };
  struct CpuApply {
    std::unique_ptr<nemesis::PeriodicDomain>* slot;
    nemesis::Kernel* kernel;
    nemesis::QosParams wanted;
    // Long-term demand (re-)registered with the manager on the forward
    // apply: the renegotiated spec normally, but the original request when
    // the adaptation plane drives the change (so grants can grow back).
    nemesis::QosParams request;
    nemesis::QosParams prev;
    nemesis::QosParams prev_request;
    int end;
    std::string suffix;
    AdmitFailure kind;
  };
  const nemesis::QosParams no_cpu{0, sim::Milliseconds(100), true};
  std::vector<CpuApply> cpu_applies;
  cpu_applies.push_back({&source_handler_,
                         source_ws_ != nullptr ? source_ws_->kernel() : nullptr,
                         spec.source_cpu,
                         update_requests ? spec.source_cpu : requested_source_cpu_,
                         source_handler_ != nullptr ? source_handler_->qos() : no_cpu,
                         requested_source_cpu_, kSourceEnd, "/src", AdmitFailure::kSourceCpu});
  for (size_t k = 0; k < nstages; ++k) {
    cpu_applies.push_back({&legs_[k].handler,
                           legs_[k].compute != nullptr ? legs_[k].compute->kernel() : nullptr,
                           wanted_stage_cpu[k], wanted_stage_cpu[k], old_stage_cpu[k],
                           old_stage_cpu[k], 2 + static_cast<int>(k),
                           "/via" + std::to_string(k), AdmitFailure::kComputeCpu});
  }
  if (multicast_) {
    // Per-leaf sink handlers move together at the one per-sink contract.
    for (size_t si = 0; si < mcast_sinks_.size(); ++si) {
      McastSinkBinding& b = mcast_sinks_[si];
      if (b.sink.ws == nullptr) {
        continue;
      }
      cpu_applies.push_back({&b.handler, b.sink.ws->kernel(), spec.sink_cpu,
                             update_requests ? spec.sink_cpu : requested_sink_cpu_,
                             b.handler != nullptr ? b.handler->qos() : no_cpu,
                             requested_sink_cpu_, kSinkEnd, "/snk" + std::to_string(si),
                             AdmitFailure::kSinkCpu});
    }
  } else {
    cpu_applies.push_back({&sink_handler_, sink_ws_ != nullptr ? sink_ws_->kernel() : nullptr,
                           spec.sink_cpu,
                           update_requests ? spec.sink_cpu : requested_sink_cpu_,
                           sink_handler_ != nullptr ? sink_handler_->qos() : no_cpu,
                           requested_sink_cpu_, kSinkEnd, "/snk", AdmitFailure::kSinkCpu});
  }
  std::sort(cpu_applies.begin(), cpu_applies.end(), [](const CpuApply& a, const CpuApply& b) {
    return a.wanted.Utilization() - a.prev.Utilization() <
           b.wanted.Utilization() - b.prev.Utilization();
  });
  for (CpuApply& apply : cpu_applies) {
    if (!apply_cpu(apply.slot, apply.kernel, apply.wanted, apply.request, apply.end,
                   apply.suffix)) {
      rollback();
      report.verdict = AdmitVerdict::kRejected;
      report.failure = apply.kind;
      report.detail = "CPU re-admission refused after the joint pre-check";
      return report;
    }
    undo.push_back([this, &apply_cpu, apply]() mutable {
      apply_cpu(apply.slot, apply.kernel, apply.prev, apply.prev_request, apply.end,
                apply.suffix);
    });
  }

  // Disk, by release-and-re-reserve.
  if (storage_ != nullptr && file_ >= 0 && spec.disk_bps != old.disk_bps) {
    pfs::PegasusFileServer* server = storage_->server();
    const bool was_reserved = disk_reserved_;
    if (disk_reserved_) {
      server->ReleaseStream(file_);
      disk_reserved_ = false;
    }
    if (spec.disk_bps > 0 && !server->ReserveStream(file_, spec.disk_bps)) {
      if (was_reserved && old.disk_bps > 0) {
        server->ReserveStream(file_, old.disk_bps);
        disk_reserved_ = true;
      }
      rollback();
      report.verdict = AdmitVerdict::kRejected;
      report.failure = AdmitFailure::kDiskBandwidth;
      report.detail = "PFS re-reservation refused after the joint pre-check";
      return report;
    }
    disk_reserved_ = spec.disk_bps > 0;
  }

  // ---- bind the new contract; the renegotiated demand becomes the
  // long-term request the QoS manager steers toward ----
  contract_.granted = spec;
  if (nlegs > 1) {
    // The stream-wide bandwidth knob plays no part in a pipeline
    // renegotiation (legs carry the real demands); keep the previous value
    // rather than echoing an ignored edit into the granted contract.
    contract_.granted.bandwidth_bps = old.bandwidth_bps;
    if (contract_.granted.legs.size() < nlegs) {
      contract_.granted.legs.resize(nlegs);
    }
    for (size_t i = 0; i < nlegs; ++i) {
      contract_.granted.legs[i].bandwidth_bps = wanted_bps[i];
    }
    for (size_t k = 0; k < nstages; ++k) {
      contract_.granted.legs[k].compute_cpu =
          legs_[k].handler != nullptr ? legs_[k].handler->qos() : no_cpu;
    }
  } else if (nlegs == 1) {
    contract_.granted.bandwidth_bps = wanted_bps[0];
  }
  if (update_requests) {
    requested_source_cpu_ = spec.source_cpu;
    requested_sink_cpu_ = spec.sink_cpu;
    // An application-driven renegotiation states a new nominal; the
    // adaptation plane scales from it hereafter, with every signal
    // source's limit reset.
    nominal_ = contract_.granted;
    current_fraction_ = 1.0;
    app_limit_ = 1.0;
    disk_limit_ = 1.0;
    net_link_limits_.clear();
    cpu_end_limits_.clear();
  }
  if (source_handler_ != nullptr) {
    contract_.granted.source_cpu = source_handler_->qos();
  }
  if (sink_handler_ != nullptr) {
    contract_.granted.sink_cpu = sink_handler_->qos();
  }
  ++contract_.renegotiations;
  ApplySourcePacing();
  // The disk release-and-re-reserve cycle dropped the pressure callback.
  RebindDiskPressureHook();
  report.verdict = AdmitVerdict::kAccepted;
  return report;
}

void StreamSession::UnbindMulticastSink(McastSinkBinding& b) {
  atm::Network& network = system_->network();
  if (b.sink.storage != nullptr && b.record_file >= 0) {
    b.sink.storage->StopRecording(b.leaf_vci, []() {});
    b.record_file = -1;
  }
  if (b.window_created && b.sink.display != nullptr) {
    dev::WindowManager wm(b.sink.display);
    wm.DestroyWindow(b.leaf_vci);
    b.window_created = false;
  }
  ReleaseCpuEnd(&b.handler, b.sink.ws != nullptr ? b.sink.ws->kernel() : nullptr);
  if (b.control_vc >= 0) {
    network.CloseVc(b.control_vc);
    control_vcs_.erase(std::remove(control_vcs_.begin(), control_vcs_.end(), b.control_vc),
                       control_vcs_.end());
    b.control_vc = -1;
  }
}

std::optional<atm::Vci> StreamSession::SinkVci(const atm::Endpoint* endpoint) const {
  for (const McastSinkBinding& b : mcast_sinks_) {
    if (b.sink.endpoint == endpoint) {
      return b.leaf_vci;
    }
  }
  return std::nullopt;
}

AdmissionReport StreamSession::AddSink(const MulticastSink& sink) {
  AdmissionReport report;
  report.verdict = AdmitVerdict::kRejected;
  if (!active_ || !multicast_ || legs_.empty()) {
    report.failure = AdmitFailure::kEndpoint;
    report.detail = "not an active one-to-many session";
    return report;
  }
  atm::Network& network = system_->network();
  atm::Endpoint* ep = McastSinkEndpoint(sink);
  if (ep == nullptr) {
    report.failure = AdmitFailure::kEndpoint;
    report.detail = "sink names no endpoint";
    return report;
  }
  if (SinkVci(ep).has_value()) {
    report.failure = AdmitFailure::kEndpoint;
    report.detail = "endpoint is already a leaf";
    return report;
  }
  // The graft must meet the session's latency bound like any original leaf.
  if (contract_.granted.latency_bound > 0) {
    auto route = network.ResolveRoute(source_ep_, ep);
    if (!route.has_value()) {
      report.failure = AdmitFailure::kNoPath;
      report.detail = "no switch path to the new leaf";
      return report;
    }
    if (route->latency_ns > contract_.granted.latency_bound) {
      report.failure = AdmitFailure::kLatency;
      report.detail = "graft path exceeds the latency bound";
      return report;
    }
  }
  // Sink CPU on the leaf host alone — the rest of the tree is untouched.
  const nemesis::QosParams sink_cpu = contract_.granted.sink_cpu;
  nemesis::Kernel* leaf_kernel =
      sink.ws != nullptr ? sink.ws->kernel() : nullptr;
  if (sink_cpu.slice > 0 && sink.ws != nullptr) {
    if (leaf_kernel == nullptr) {
      report.failure = AdmitFailure::kSinkCpu;
      report.detail = "no kernel attached to the leaf host";
      return report;
    }
    if (sink_cpu.Utilization() > CpuHeadroom(leaf_kernel) + 1e-9) {
      report.failure = AdmitFailure::kSinkCpu;
      report.detail = "leaf host CPU demand exceeds Atropos headroom";
      return report;
    }
  }
  // Graft admission: AddLeaf checks (and charges) ONLY the links the graft
  // newly adds — links the tree already crosses are free.
  auto leaf_vci = network.AddLeaf(legs_.front().vc, ep);
  if (!leaf_vci.has_value()) {
    report.failure = AdmitFailure::kNetworkBandwidth;
    report.detail = "graft admission refused (no path or a new link lacks capacity)";
    return report;
  }
  McastSinkBinding b;
  b.sink = sink;
  b.sink.endpoint = ep;
  b.leaf_vci = *leaf_vci;
  if (sink_cpu.slice > 0 && sink.ws != nullptr) {
    auto domain = std::make_unique<nemesis::PeriodicDomain>(
        system_->simulator(), name_ + "/snk" + std::to_string(mcast_sinks_.size()), sink_cpu,
        sink_cpu.slice, sink_cpu.period);
    if (!leaf_kernel->AddDomain(domain.get())) {
      network.RemoveLeaf(legs_.front().vc, ep);
      report.failure = AdmitFailure::kSinkCpu;
      report.detail = "scheduler admission refused the contract after the headroom check";
      return report;
    }
    b.handler = std::move(domain);
  }
  if (mcast_window_requested_ && b.sink.display != nullptr) {
    dev::WindowManager wm(b.sink.display);
    wm.CreateWindow(b.leaf_vci, mcast_window_x_, mcast_window_y_, mcast_window_w_,
                    mcast_window_h_);
    b.window_created = true;
  }
  if (b.sink.storage != nullptr) {
    atm::Vci control_receive = atm::kVciUnassigned;
    if (source_ws_ != nullptr) {
      auto control = network.OpenVc(source_ws_->host(), b.sink.storage->endpoint());
      if (!control.has_value()) {
        ReleaseCpuEnd(&b.handler, leaf_kernel);
        if (b.window_created && b.sink.display != nullptr) {
          dev::WindowManager wm(b.sink.display);
          wm.DestroyWindow(b.leaf_vci);
        }
        network.RemoveLeaf(legs_.front().vc, ep);
        report.failure = AdmitFailure::kNoPath;
        report.detail = "control VC establishment failed";
        return report;
      }
      b.control_vc = control->id;
      control_vcs_.push_back(control->id);
      control_receive = control->destination_vci;
      if (control_send_vci_ == atm::kVciUnassigned) {
        control_send_vci_ = control->source_vci;
        control_receive_vci_ = control->destination_vci;
      }
    }
    b.record_file =
        b.sink.storage->StartRecording(b.leaf_vci, control_receive, b.sink.record_stream_id);
    if (file_ < 0) {
      file_ = b.record_file;  // file() names the first recording leaf
    }
  }
  mcast_sinks_.push_back(std::move(b));
  if (const atm::VcDescriptor* desc = network.GetVc(legs_.front().vc)) {
    contract_.hop_count = desc->hop_count;
    legs_.front().hop_count = desc->hop_count;
  }
  report.verdict = AdmitVerdict::kAccepted;
  report.failure = AdmitFailure::kNone;
  return report;
}

bool StreamSession::RemoveSink(const atm::Endpoint* endpoint) {
  if (!active_ || !multicast_ || legs_.empty()) {
    return false;
  }
  auto it = std::find_if(mcast_sinks_.begin(), mcast_sinks_.end(),
                         [endpoint](const McastSinkBinding& b) {
                           return b.sink.endpoint == endpoint;
                         });
  if (it == mcast_sinks_.end()) {
    return false;
  }
  // The last leaf cannot be pruned (the network refuses a leafless tree);
  // Close() the session instead.
  if (mcast_sinks_.size() <= 1) {
    return false;
  }
  atm::Network& network = system_->network();
  UnbindMulticastSink(*it);
  network.RemoveLeaf(legs_.front().vc, it->sink.endpoint);
  mcast_sinks_.erase(it);
  if (const atm::VcDescriptor* desc = network.GetVc(legs_.front().vc)) {
    contract_.hop_count = desc->hop_count;
    legs_.front().hop_count = desc->hop_count;
  }
  return true;
}

void StreamSession::Close() {
  if (!active_) {
    return;
  }
  active_ = false;
  atm::Network& network = system_->network();

  // One-to-many: unbind every leaf (recording, window, per-host CPU,
  // control) before the tree VC below releases the shared reservations.
  for (McastSinkBinding& b : mcast_sinks_) {
    UnbindMulticastSink(b);
  }

  // Storage layer: stop the transfer, release the rate reservation (which
  // also drops the budget-pressure subscription) and the play-out pacing.
  if (storage_ != nullptr) {
    if (recording_) {
      storage_->StopRecording(sink_vci(), []() {});
    } else if (file_ >= 0) {
      storage_->StopPlayback(file_);
      storage_->SetPlayoutPaceBps(file_, 0);
    }
    if (disk_reserved_) {
      storage_->server()->ReleaseStream(file_);
      disk_reserved_ = false;
    }
  }

  // Display layer: retire the window granted to the final leg's VC.
  if (window_created_ && sink_display_ != nullptr) {
    dev::WindowManager wm(sink_display_);
    wm.DestroyWindow(sink_vci());
    window_created_ = false;
  }

  // CPU layer: retire the handler domains and their manager registrations.
  ReleaseCpuEnd(&source_handler_, source_ws_ != nullptr ? source_ws_->kernel() : nullptr);
  ReleaseCpuEnd(&sink_handler_, sink_ws_ != nullptr ? sink_ws_->kernel() : nullptr);

  // Compute layer: detach every stage (no more packets reach it) and
  // release its contract domain.
  for (Leg& leg : legs_) {
    if (leg.compute != nullptr && leg.processor != nullptr) {
      leg.compute->DetachStage(leg.processor);
    }
    ReleaseCpuEnd(&leg.handler, leg.compute != nullptr ? leg.compute->kernel() : nullptr);
  }

  // Network layer: close every leg's VC, releasing every link reservation.
  for (Leg& leg : legs_) {
    if (leg.vc >= 0) {
      network.CloseVc(leg.vc);
      leg.vc = -1;
    }
  }
  for (atm::VcId vc : control_vcs_) {
    network.CloseVc(vc);
  }
  control_vcs_.clear();
}

// --- StreamBuilder ---

StreamBuilder::StreamBuilder(PegasusSystem* system, std::string name)
    : system_(system), name_(std::move(name)) {}

StreamBuilder& StreamBuilder::From(Workstation* ws, dev::AtmCamera* camera) {
  source_kind_ = EndpointKind::kWorkstationDevice;
  source_ws_ = ws;
  source_ep_ = ws != nullptr ? ws->device_endpoint(camera) : nullptr;
  source_camera_ = camera;
  return *this;
}

StreamBuilder& StreamBuilder::From(Workstation* ws, dev::AudioCapture* capture) {
  source_kind_ = EndpointKind::kWorkstationDevice;
  source_ws_ = ws;
  source_ep_ = ws != nullptr ? ws->device_endpoint(capture) : nullptr;
  source_audio_ = capture;
  return *this;
}

StreamBuilder& StreamBuilder::FromEndpoint(Workstation* ws, atm::Endpoint* endpoint) {
  source_kind_ = EndpointKind::kWorkstationDevice;
  source_ws_ = ws;
  source_ep_ = endpoint;
  return *this;
}

StreamBuilder& StreamBuilder::FromStorage(StorageNode* storage, pfs::FileId file) {
  source_kind_ = EndpointKind::kStorage;
  source_storage_ = storage;
  source_ep_ = storage != nullptr ? storage->endpoint() : nullptr;
  playback_file_ = file;
  return *this;
}

StreamBuilder& StreamBuilder::Via(ComputeNode* node, dev::TileProcessor::Config stage) {
  ViaStage via;
  via.node = node;
  via.config = std::move(stage);
  vias_.push_back(std::move(via));
  return *this;
}

StreamBuilder& StreamBuilder::To(Workstation* ws, dev::AtmDisplay* display) {
  sink_kind_ = EndpointKind::kWorkstationDevice;
  sink_ws_ = ws;
  sink_ep_ = ws != nullptr ? ws->device_endpoint(display) : nullptr;
  sink_display_ = display;
  return *this;
}

StreamBuilder& StreamBuilder::To(Workstation* ws, dev::AudioPlayback* playback) {
  sink_kind_ = EndpointKind::kWorkstationDevice;
  sink_ws_ = ws;
  sink_ep_ = ws != nullptr ? ws->device_endpoint(playback) : nullptr;
  return *this;
}

StreamBuilder& StreamBuilder::ToEndpoint(Workstation* ws, atm::Endpoint* endpoint) {
  sink_kind_ = EndpointKind::kWorkstationDevice;
  sink_ws_ = ws;
  sink_ep_ = endpoint;
  return *this;
}

StreamBuilder& StreamBuilder::ToStorage(StorageNode* storage, uint32_t stream_id) {
  sink_kind_ = EndpointKind::kStorage;
  sink_storage_ = storage;
  sink_ep_ = storage != nullptr ? storage->endpoint() : nullptr;
  record_stream_id_ = stream_id;
  return *this;
}

StreamBuilder& StreamBuilder::ToMany(const std::vector<MulticastSink>& sinks) {
  multicast_sinks_ = sinks;
  return *this;
}

StreamBuilder& StreamBuilder::WithSpec(const StreamSpec& spec) {
  spec_ = spec;
  return *this;
}

StreamBuilder& StreamBuilder::WithWindow(int x, int y, int w, int h) {
  window_requested_ = true;
  window_x_ = x;
  window_y_ = y;
  window_w_ = w;
  window_h_ = h;
  return *this;
}

StreamBuilder& StreamBuilder::ManagedBy(nemesis::QosManagerDomain* manager, double weight) {
  manager_ = manager;
  manager_weight_ = weight;
  return *this;
}

StreamBuilder& StreamBuilder::RequestingSourceCpu(const nemesis::QosParams& cpu) {
  requested_source_cpu_ = cpu;
  return *this;
}

StreamBuilder& StreamBuilder::RequestingSinkCpu(const nemesis::QosParams& cpu) {
  requested_sink_cpu_ = cpu;
  return *this;
}

StreamBuilder& StreamBuilder::WithAdaptation(const AdaptationPolicy& policy) {
  adaptation_ = policy;
  return *this;
}

StreamBuilder& StreamBuilder::OnDegrade(StreamSession::DegradeCallback cb) {
  degrade_cb_ = std::move(cb);
  return *this;
}

StreamResult StreamBuilder::Open() {
  if (!multicast_sinks_.empty()) {
    return OpenMulticast();
  }
  StreamResult result;
  AdmissionReport& report = result.report;
  atm::Network& network = system_->network();

  // --- resolve endpoints: source, every compute detour, sink ---
  if (source_ep_ == nullptr || sink_ep_ == nullptr ||
      source_kind_ == EndpointKind::kNone || sink_kind_ == EndpointKind::kNone) {
    report.verdict = AdmitVerdict::kRejected;
    report.failure = AdmitFailure::kEndpoint;
    report.detail = "source or sink endpoint missing";
    return result;
  }
  for (const ViaStage& via : vias_) {
    if (via.node == nullptr || via.node->endpoint() == nullptr) {
      report.verdict = AdmitVerdict::kRejected;
      report.failure = AdmitFailure::kEndpoint;
      report.detail = "compute node missing";
      return result;
    }
  }
  StorageNode* storage = sink_storage_ != nullptr ? sink_storage_ : source_storage_;
  std::vector<atm::Endpoint*> chain;
  chain.push_back(source_ep_);
  for (const ViaStage& via : vias_) {
    chain.push_back(via.node->endpoint());
  }
  chain.push_back(sink_ep_);
  const size_t nlegs = chain.size() - 1;
  const size_t nstages = vias_.size();
  std::vector<int64_t> wanted_bps(nlegs);
  for (size_t i = 0; i < nlegs; ++i) {
    wanted_bps[i] = spec_.LegBandwidthBps(i);
  }

  // --- cross-layer admission: check EVERY layer of EVERY leg in one pass
  // before binding anything, collecting all failures into one joint
  // counter-offer (the pass shared with RenegotiateImpl) ---
  // One ResolveRoute per leg serves the whole pass: the joint bandwidth
  // check, the latency check and the VC install below all reuse this
  // resolve instead of re-running the pathfinder.
  std::vector<atm::ResolvedRoute> leg_routes(nlegs);
  std::vector<std::vector<atm::Link*>> leg_links(nlegs);
  for (size_t i = 0; i < nlegs; ++i) {
    auto route = network.ResolveRoute(chain[i], chain[i + 1]);
    if (!route.has_value()) {
      report.verdict = AdmitVerdict::kRejected;
      report.failure = AdmitFailure::kNoPath;
      report.detail = "no switch path on leg " + std::to_string(i);
      return result;
    }
    leg_links[i] = route->links;
    leg_routes[i] = std::move(*route);
  }

  // Latency bound against the chain's delivery-time floor. A resolved leg
  // always carries its latency, so an uncomputable floor is a kNoPath
  // rejection above — never silently treated as zero latency.
  if (spec_.latency_bound > 0) {
    sim::DurationNs total_latency = 0;
    for (size_t i = 0; i < nlegs; ++i) {
      total_latency += leg_routes[i].latency_ns;
    }
    if (total_latency > spec_.latency_bound) {
      report.verdict = AdmitVerdict::kRejected;
      report.failure = AdmitFailure::kLatency;
      report.detail = "chain latency floor exceeds the bound";
      return result;
    }
  }

  if (spec_.disk_bps > 0 && storage == nullptr) {
    report.verdict = AdmitVerdict::kRejected;
    report.failure = AdmitFailure::kDiskBandwidth;
    report.detail = "disk rate demanded but no storage endpoint on the path";
    return result;
  }

  std::vector<nemesis::Kernel*> stage_kernels(nstages);
  std::vector<nemesis::QosParams> stage_cpu(nstages);
  for (size_t k = 0; k < nstages; ++k) {
    stage_kernels[k] = vias_[k].node->kernel();
    stage_cpu[k] = spec_.LegComputeCpu(k);
  }
  JointAdmissionRequest req;
  req.network = &network;
  req.nlegs = nlegs;
  req.nstages = nstages;
  req.leg_links = &leg_links;
  req.wanted_bps = wanted_bps;
  req.old_bps = std::vector<int64_t>(nlegs, 0);
  req.counter_streamwide =
      nlegs == 1 &&
      (spec_.legs.empty() || spec_.legs[0].bandwidth_bps == LegSpec::kInheritBps);
  req.cpu_ends =
      BuildCpuEnds(source_ws_ != nullptr ? source_ws_->kernel() : nullptr, spec_.source_cpu,
                   0.0, sink_ws_ != nullptr ? sink_ws_->kernel() : nullptr, spec_.sink_cpu,
                   0.0, stage_kernels, stage_cpu, std::vector<double>(nstages, 0.0));
  req.stage_cpu = stage_cpu;
  req.check_disk = spec_.disk_bps > 0;
  req.disk_wanted = spec_.disk_bps;
  if (req.check_disk) {
    req.disk_available = storage->server()->AvailableStreamBps();
  }
  if (!RunJointAdmission(req, spec_, &report)) {
    return result;
  }

  // --- every layer accepts: bind the whole chain ---
  auto session = std::unique_ptr<StreamSession>(new StreamSession());
  StreamSession* s = session.get();
  s->name_ = name_;
  s->system_ = system_;
  s->source_ws_ = source_ws_;
  s->sink_ws_ = sink_ws_;
  s->source_ep_ = source_ep_;
  s->sink_ep_ = sink_ep_;
  s->source_camera_ = source_camera_;
  s->source_audio_ = source_audio_;
  s->sink_display_ = sink_display_;
  s->storage_ = storage;
  s->recording_ = sink_storage_ != nullptr;
  s->manager_ = manager_;
  s->manager_weight_ = manager_weight_;
  s->requested_source_cpu_ = requested_source_cpu_.value_or(spec_.source_cpu);
  s->requested_sink_cpu_ = requested_sink_cpu_.value_or(spec_.sink_cpu);
  if (adaptation_.has_value()) {
    s->has_adaptation_ = true;
    s->policy_ = *adaptation_;
  }
  s->degrade_cb_ = std::move(degrade_cb_);
  s->active_ = true;

  // Network: one reserved VC per leg; control VCs are best-effort, as in
  // the paper's signalling.
  int total_hops = 0;
  for (size_t i = 0; i < nlegs; ++i) {
    auto vc = network.OpenVc(chain[i], chain[i + 1], atm::QosSpec{wanted_bps[i]}, leg_routes[i]);
    if (!vc.has_value()) {
      s->Close();
      report.verdict = AdmitVerdict::kRejected;
      report.failure = AdmitFailure::kNetworkBandwidth;
      report.detail = "VC establishment failed after admission on leg " + std::to_string(i);
      system_->AdoptSession(std::move(session));
      return result;
    }
    StreamSession::Leg leg;
    leg.vc = vc->id;
    leg.source_vci = vc->source_vci;
    leg.sink_vci = vc->destination_vci;
    leg.granted_bps = wanted_bps[i];
    leg.hop_count = vc->hop_count;
    leg.compute = i < nstages ? vias_[i].node : nullptr;
    s->legs_.push_back(std::move(leg));
    total_hops += vc->hop_count;
  }

  // Compute: instantiate each detour's processing stage between its
  // incoming and outgoing legs.
  for (size_t k = 0; k < nstages; ++k) {
    s->legs_[k].processor = vias_[k].node->AddStage(
        s->legs_[k].sink_vci, s->legs_[k + 1].source_vci, vias_[k].config);
  }

  bool control_failed = false;
  if (source_kind_ == EndpointKind::kWorkstationDevice &&
      sink_kind_ == EndpointKind::kWorkstationDevice) {
    // Control duplex: sink host -> source host (start/stop, mode select,
    // sync), plus the reverse path, as every Pegasus device pairs (§2.2).
    auto control = network.OpenDuplex(sink_ws_->host(), source_ws_->host());
    if (control.has_value()) {
      s->control_vcs_ = {control->first.id, control->second.id};
      s->control_send_vci_ = control->first.source_vci;
      s->control_receive_vci_ = control->second.destination_vci;
    } else {
      control_failed = true;
    }
  } else if (storage != nullptr) {
    // Control stream from the managing host to the file server, which "can
    // also be viewed as a multimedia device" (§2.2): index marks ride here.
    Workstation* managing = sink_storage_ != nullptr ? source_ws_ : sink_ws_;
    if (managing != nullptr) {
      auto control = network.OpenVc(managing->host(), storage->endpoint());
      if (control.has_value()) {
        s->control_vcs_ = {control->id};
        s->control_send_vci_ = control->source_vci;
        s->control_receive_vci_ = control->destination_vci;
      } else {
        control_failed = true;
      }
    }
  }
  if (control_failed) {
    // A session without its control path is not the contract that was asked
    // for (index marks and device control would vanish silently).
    s->Close();
    report.verdict = AdmitVerdict::kRejected;
    report.failure = AdmitFailure::kNoPath;
    report.detail = "control VC establishment failed";
    system_->AdoptSession(std::move(session));
    return result;
  }

  // CPU: bind the per-end handler domains and per-stage compute domains
  // through scheduler admission.
  struct CpuBind {
    std::unique_ptr<nemesis::PeriodicDomain>* handler;
    nemesis::QosParams qos;
    nemesis::Kernel* kernel;
    nemesis::QosParams requested;
    std::string suffix;
    AdmitFailure failure;
    int end;
  };
  std::vector<CpuBind> binds;
  binds.push_back({&s->source_handler_, spec_.source_cpu,
                   source_ws_ != nullptr ? source_ws_->kernel() : nullptr,
                   s->requested_source_cpu_, "/src", AdmitFailure::kSourceCpu,
                   StreamSession::kSourceEnd});
  for (size_t k = 0; k < nstages; ++k) {
    const nemesis::QosParams stage_cpu = spec_.LegComputeCpu(k);
    binds.push_back({&s->legs_[k].handler, stage_cpu, vias_[k].node->kernel(), stage_cpu,
                     "/via" + std::to_string(k), AdmitFailure::kComputeCpu,
                     2 + static_cast<int>(k)});
  }
  binds.push_back({&s->sink_handler_, spec_.sink_cpu,
                   sink_ws_ != nullptr ? sink_ws_->kernel() : nullptr,
                   s->requested_sink_cpu_, "/snk", AdmitFailure::kSinkCpu,
                   StreamSession::kSinkEnd});
  for (const CpuBind& bind : binds) {
    if (bind.qos.slice <= 0) {
      continue;
    }
    auto domain = std::make_unique<nemesis::PeriodicDomain>(
        system_->simulator(), name_ + bind.suffix, bind.qos, bind.qos.slice, bind.qos.period);
    if (!bind.kernel->AddDomain(domain.get())) {
      s->Close();
      report.verdict = AdmitVerdict::kRejected;
      report.failure = bind.failure;
      report.detail = "scheduler admission refused the contract after the headroom check";
      system_->AdoptSession(std::move(session));
      return result;
    }
    if (manager_ != nullptr && manager_->kernel() == bind.kernel) {
      manager_->Register(domain.get(), manager_weight_, bind.requested,
                         [s, end = bind.end](const nemesis::GrantUpdate& update) {
                           s->OnGrantChanged(end, update);
                         });
    }
    *bind.handler = std::move(domain);
  }

  // Storage: start the transfer under the rate reservation.
  if (sink_storage_ != nullptr) {
    s->file_ = sink_storage_->StartRecording(s->sink_vci(), s->control_receive_vci_,
                                             record_stream_id_);
  } else if (source_storage_ != nullptr) {
    s->file_ = playback_file_;
  }
  if (spec_.disk_bps > 0 && storage != nullptr && s->file_ >= 0) {
    if (!storage->server()->ReserveStream(s->file_, spec_.disk_bps)) {
      s->Close();
      report.verdict = AdmitVerdict::kRejected;
      report.failure = AdmitFailure::kDiskBandwidth;
      report.detail = "PFS reservation refused after the budget check";
      system_->AdoptSession(std::move(session));
      return result;
    }
    s->disk_reserved_ = true;
  }

  // Display: the window manager grants the final leg's VC a window.
  if (sink_display_ != nullptr && window_requested_) {
    int w = window_w_;
    int h = window_h_;
    if ((w == 0 || h == 0) && source_camera_ != nullptr) {
      w = source_camera_->config().width;
      h = source_camera_->config().height;
    }
    dev::WindowManager wm(sink_display_);
    wm.CreateWindow(s->sink_vci(), window_x_, window_y_, w, h);
    s->window_created_ = true;
  }

  // The granted contract carries fully explicit legs for pipelines, so
  // callers renegotiate by editing contract().granted.
  s->contract_.granted = spec_;
  if (nlegs > 1 && s->contract_.granted.legs.size() < nlegs) {
    s->contract_.granted.legs.resize(nlegs);
  }
  for (size_t i = 0; i < s->contract_.granted.legs.size() && i < nlegs; ++i) {
    s->contract_.granted.legs[i].bandwidth_bps = wanted_bps[i];
  }
  s->contract_.hop_count = total_hops;
  s->contract_.established_at = system_->simulator()->now();
  // The contract as admitted is the nominal (full-rate) point the
  // adaptation plane scales from and restores toward.
  s->nominal_ = s->contract_.granted;

  // Pace every media source to the granted rates so the reservations hold
  // (camera and audio to the first leg, storage play-out to min(net, disk)),
  // and subscribe the session to the other layers' degradation signals.
  s->ApplySourcePacing();
  s->BindAdaptationHooks();

  report.verdict = AdmitVerdict::kAccepted;
  report.failure = AdmitFailure::kNone;
  result.session = s;
  system_->AdoptSession(std::move(session));
  return result;
}

StreamResult StreamBuilder::OpenMulticast() {
  StreamResult result;
  AdmissionReport& report = result.report;
  atm::Network& network = system_->network();
  auto reject = [&](AdmitFailure failure, const char* detail) {
    report.verdict = AdmitVerdict::kRejected;
    report.failure = failure;
    report.detail = detail;
    return result;
  };

  // --- resolve the fan-out set; one-to-many composes with From*/WithSpec/
  // WithWindow/WithAdaptation but not with the point-to-point-only pieces ---
  if (source_ep_ == nullptr || source_kind_ == EndpointKind::kNone) {
    return reject(AdmitFailure::kEndpoint, "source endpoint missing");
  }
  if (sink_kind_ != EndpointKind::kNone) {
    return reject(AdmitFailure::kEndpoint, "To*() and ToMany() are mutually exclusive");
  }
  if (!vias_.empty()) {
    return reject(AdmitFailure::kEndpoint,
                  "compute detours are point-to-point; ToMany() takes no Via() stages");
  }
  if (manager_ != nullptr) {
    return reject(AdmitFailure::kEndpoint,
                  "QoS-manager registration is not supported on one-to-many sessions");
  }
  if (spec_.disk_bps > 0) {
    return reject(AdmitFailure::kDiskBandwidth,
                  "disk reservation is per-file; not supported on one-to-many sessions");
  }
  std::vector<atm::Endpoint*> leaf_eps;
  leaf_eps.reserve(multicast_sinks_.size());
  for (const MulticastSink& sink : multicast_sinks_) {
    atm::Endpoint* ep = McastSinkEndpoint(sink);
    if (ep == nullptr) {
      return reject(AdmitFailure::kEndpoint, "a multicast sink names no endpoint");
    }
    leaf_eps.push_back(ep);
  }

  // --- joint admission over the TREE: per-sink cached resolves give the
  // deduplicated union of traversed links — exactly the edge set
  // OpenMulticastVc will build — so each shared edge is charged once, and
  // the deepest leaf bounds the latency ---
  std::vector<atm::Link*> union_links;
  std::set<atm::Link*> seen_links;
  sim::DurationNs worst_latency = 0;
  for (atm::Endpoint* ep : leaf_eps) {
    auto route = network.ResolveRoute(source_ep_, ep);
    if (!route.has_value()) {
      return reject(AdmitFailure::kNoPath, "no switch path to a sink");
    }
    worst_latency = std::max(worst_latency, route->latency_ns);
    for (atm::Link* l : route->links) {
      if (seen_links.insert(l).second) {
        union_links.push_back(l);
      }
    }
  }
  if (spec_.latency_bound > 0 && worst_latency > spec_.latency_bound) {
    return reject(AdmitFailure::kLatency, "deepest leaf exceeds the latency bound");
  }

  const nemesis::QosParams no_cpu{0, sim::Milliseconds(100), true};
  JointAdmissionRequest req;
  req.network = &network;
  req.nlegs = 1;
  req.nstages = 0;
  std::vector<std::vector<atm::Link*>> leg_links{union_links};
  req.leg_links = &leg_links;
  req.wanted_bps = {spec_.bandwidth_bps};
  req.old_bps = {0};
  // A clamp lands on the stream-wide knob: the counter-offer scales the
  // whole tree as one unit.
  req.counter_streamwide = true;
  req.cpu_ends = BuildCpuEnds(source_ws_ != nullptr ? source_ws_->kernel() : nullptr,
                              spec_.source_cpu, 0.0, nullptr, no_cpu, 0.0, {}, {}, {});
  for (const MulticastSink& sink : multicast_sinks_) {
    if (sink.ws == nullptr) {
      continue;
    }
    CpuEndCheck leaf;
    leaf.end = StreamSession::kSinkEnd;
    leaf.kernel = sink.ws->kernel();
    leaf.wanted = spec_.sink_cpu;
    leaf.kind = AdmitFailure::kSinkCpu;
    leaf.what = "sink";
    req.cpu_ends.push_back(leaf);
  }
  if (!RunJointAdmission(req, spec_, &report)) {
    return result;
  }

  // --- every layer accepts: bind the tree ---
  auto session = std::unique_ptr<StreamSession>(new StreamSession());
  StreamSession* s = session.get();
  s->name_ = name_;
  s->system_ = system_;
  s->multicast_ = true;
  s->source_ws_ = source_ws_;
  s->source_ep_ = source_ep_;
  s->source_camera_ = source_camera_;
  s->source_audio_ = source_audio_;
  s->requested_source_cpu_ = requested_source_cpu_.value_or(spec_.source_cpu);
  s->requested_sink_cpu_ = requested_sink_cpu_.value_or(spec_.sink_cpu);
  if (adaptation_.has_value()) {
    s->has_adaptation_ = true;
    s->policy_ = *adaptation_;
  }
  s->degrade_cb_ = std::move(degrade_cb_);
  s->mcast_window_requested_ = window_requested_;
  s->mcast_window_x_ = window_x_;
  s->mcast_window_y_ = window_y_;
  s->mcast_window_w_ = window_w_;
  s->mcast_window_h_ = window_h_;
  if ((s->mcast_window_w_ == 0 || s->mcast_window_h_ == 0) && source_camera_ != nullptr) {
    s->mcast_window_w_ = source_camera_->config().width;
    s->mcast_window_h_ = source_camera_->config().height;
  }
  s->active_ = true;

  auto vc = network.OpenMulticastVc(source_ep_, leaf_eps, atm::QosSpec{spec_.bandwidth_bps});
  if (!vc.has_value()) {
    s->Close();
    report.verdict = AdmitVerdict::kRejected;
    report.failure = AdmitFailure::kNetworkBandwidth;
    report.detail = "tree establishment failed after admission";
    system_->AdoptSession(std::move(session));
    return result;
  }
  StreamSession::Leg leg;
  leg.vc = vc->id;
  leg.source_vci = vc->source_vci;
  leg.sink_vci = vc->destination_vci;
  leg.granted_bps = spec_.bandwidth_bps;
  leg.hop_count = vc->hop_count;
  s->legs_.push_back(std::move(leg));

  // Source CPU.
  if (spec_.source_cpu.slice > 0) {
    auto domain = std::make_unique<nemesis::PeriodicDomain>(
        system_->simulator(), name_ + "/src", spec_.source_cpu, spec_.source_cpu.slice,
        spec_.source_cpu.period);
    if (!source_ws_->kernel()->AddDomain(domain.get())) {
      s->Close();
      report.verdict = AdmitVerdict::kRejected;
      report.failure = AdmitFailure::kSourceCpu;
      report.detail = "scheduler admission refused the contract after the headroom check";
      system_->AdoptSession(std::move(session));
      return result;
    }
    s->source_handler_ = std::move(domain);
  }

  // Per-leaf binds: sink CPU, window, recording + control, in sink order.
  for (size_t i = 0; i < multicast_sinks_.size(); ++i) {
    s->mcast_sinks_.emplace_back();
    StreamSession::McastSinkBinding& b = s->mcast_sinks_.back();
    b.sink = multicast_sinks_[i];
    b.sink.endpoint = leaf_eps[i];
    b.leaf_vci = network.McastLeafVci(vc->id, leaf_eps[i]).value_or(atm::kVciUnassigned);
    if (spec_.sink_cpu.slice > 0 && b.sink.ws != nullptr) {
      auto domain = std::make_unique<nemesis::PeriodicDomain>(
          system_->simulator(), name_ + "/snk" + std::to_string(i), spec_.sink_cpu,
          spec_.sink_cpu.slice, spec_.sink_cpu.period);
      if (!b.sink.ws->kernel()->AddDomain(domain.get())) {
        s->Close();
        report.verdict = AdmitVerdict::kRejected;
        report.failure = AdmitFailure::kSinkCpu;
        report.detail = "scheduler admission refused the contract after the headroom check";
        system_->AdoptSession(std::move(session));
        return result;
      }
      b.handler = std::move(domain);
    }
    if (window_requested_ && b.sink.display != nullptr) {
      dev::WindowManager wm(b.sink.display);
      wm.CreateWindow(b.leaf_vci, s->mcast_window_x_, s->mcast_window_y_, s->mcast_window_w_,
                      s->mcast_window_h_);
      b.window_created = true;
    }
    if (b.sink.storage != nullptr) {
      atm::Vci control_receive = atm::kVciUnassigned;
      if (source_ws_ != nullptr) {
        // Index marks ride a control VC from the managing (source) host to
        // the file server, as for a unicast recording.
        auto control = network.OpenVc(source_ws_->host(), b.sink.storage->endpoint());
        if (!control.has_value()) {
          s->Close();
          report.verdict = AdmitVerdict::kRejected;
          report.failure = AdmitFailure::kNoPath;
          report.detail = "control VC establishment failed";
          system_->AdoptSession(std::move(session));
          return result;
        }
        b.control_vc = control->id;
        s->control_vcs_.push_back(control->id);
        control_receive = control->destination_vci;
        if (s->control_send_vci_ == atm::kVciUnassigned) {
          s->control_send_vci_ = control->source_vci;
          s->control_receive_vci_ = control->destination_vci;
        }
      }
      b.record_file =
          b.sink.storage->StartRecording(b.leaf_vci, control_receive, b.sink.record_stream_id);
      if (s->file_ < 0) {
        s->file_ = b.record_file;  // file() names the first recording leaf
      }
    }
  }

  s->contract_.granted = spec_;
  s->contract_.hop_count = vc->hop_count;
  s->contract_.established_at = system_->simulator()->now();
  s->nominal_ = s->contract_.granted;
  s->ApplySourcePacing();
  s->BindAdaptationHooks();

  report.verdict = AdmitVerdict::kAccepted;
  report.failure = AdmitFailure::kNone;
  result.session = s;
  system_->AdoptSession(std::move(session));
  return result;
}

}  // namespace pegasus::core
