#include "src/core/stream.h"

#include <algorithm>
#include <utility>

#include "src/core/system.h"
#include "src/devices/display.h"
#include "src/nemesis/kernel.h"
#include "src/nemesis/scheduler.h"

namespace pegasus::core {

namespace {

// Spare guaranteed-CPU utilisation on a host kernel.
double CpuHeadroom(nemesis::Kernel* kernel) {
  return kernel->scheduler()->Capacity() - kernel->scheduler()->AdmittedUtilization();
}

// The largest slice of `period` that fits into `headroom` utilisation, with
// a small safety margin against floating-point admission arithmetic.
sim::DurationNs SliceFor(double headroom, sim::DurationNs period) {
  if (headroom <= 0.0) {
    return 0;
  }
  return static_cast<sim::DurationNs>(headroom * 0.999 * static_cast<double>(period));
}

}  // namespace

const char* AdmitFailureName(AdmitFailure failure) {
  switch (failure) {
    case AdmitFailure::kNone:
      return "none";
    case AdmitFailure::kEndpoint:
      return "endpoint";
    case AdmitFailure::kNoPath:
      return "no-path";
    case AdmitFailure::kNetworkBandwidth:
      return "network-bandwidth";
    case AdmitFailure::kLatency:
      return "latency";
    case AdmitFailure::kSourceCpu:
      return "source-cpu";
    case AdmitFailure::kSinkCpu:
      return "sink-cpu";
    case AdmitFailure::kDiskBandwidth:
      return "disk-bandwidth";
  }
  return "unknown";
}

// --- StreamSession ---

StreamSession::~StreamSession() = default;

void StreamSession::ReleaseCpuEnd(std::unique_ptr<nemesis::PeriodicDomain>* handler,
                                  nemesis::Kernel* kernel) {
  nemesis::PeriodicDomain* domain = handler->get();
  if (domain == nullptr) {
    return;
  }
  if (manager_ != nullptr) {
    manager_->Unregister(domain);
  }
  domain->Stop();
  if (kernel != nullptr && domain->kernel() == kernel) {
    kernel->RemoveDomain(domain);
  }
  // The object must outlive any pending job-release timer in the simulator;
  // Stop() made it inert, the graveyard keeps it alive.
  retired_handlers_.push_back(std::move(*handler));
}

void StreamSession::OnGrantChanged(bool source_end, double granted_util) {
  (void)granted_util;
  nemesis::PeriodicDomain* handler =
      source_end ? source_handler_.get() : sink_handler_.get();
  if (handler == nullptr) {
    return;
  }
  // The manager already applied the new contract through Kernel::UpdateQos;
  // reflect it in the cross-layer contract and tell the application.
  if (source_end) {
    contract_.granted.source_cpu = handler->qos();
  } else {
    contract_.granted.sink_cpu = handler->qos();
  }
  if (degrade_cb_) {
    degrade_cb_(contract_);
  }
}

AdmissionReport StreamSession::Renegotiate(const StreamSpec& spec) {
  AdmissionReport report;
  if (!active_) {
    report.verdict = AdmitVerdict::kRejected;
    report.failure = AdmitFailure::kEndpoint;
    report.detail = "session is closed";
    return report;
  }
  atm::Network& network = system_->network();
  const StreamSpec old = contract_.granted;

  // 1. Network: adjust the reservation on the VC's own links.
  bool network_changed = false;
  if (spec.bandwidth_bps != old.bandwidth_bps) {
    if (!network.UpdateVcQos(data_vc_, atm::QosSpec{spec.bandwidth_bps})) {
      report.verdict = AdmitVerdict::kCounterOffer;
      report.failure = AdmitFailure::kNetworkBandwidth;
      report.detail = "a traversed link lacks spare capacity for the increase";
      StreamSpec counter = spec;
      counter.bandwidth_bps =
          old.bandwidth_bps +
          std::max<int64_t>(0, network.PathAvailableBps(source_ep_, sink_ep_).value_or(0));
      report.counter_offer = counter;
      return report;
    }
    network_changed = true;
  }
  auto rollback_network = [&]() {
    if (network_changed) {
      network.UpdateVcQos(data_vc_, atm::QosSpec{old.bandwidth_bps});
    }
  };

  // 2. CPU at each end, through the kernel so admission re-runs.
  struct CpuEnd {
    std::unique_ptr<nemesis::PeriodicDomain>* handler;
    Workstation* ws;
    nemesis::QosParams wanted;
    nemesis::QosParams previous;
    AdmitFailure failure;
    bool source_end;
  };
  CpuEnd ends[2] = {
      {&source_handler_, source_ws_, spec.source_cpu, old.source_cpu,
       AdmitFailure::kSourceCpu, true},
      {&sink_handler_, sink_ws_, spec.sink_cpu, old.sink_cpu, AdmitFailure::kSinkCpu, false},
  };
  // `request` is the long-term demand (re-)registered with the QoS manager:
  // on a forward apply the renegotiated spec, on a rollback the original
  // request the session was opened with.
  auto apply_cpu = [&](CpuEnd& end, const nemesis::QosParams& qos,
                       const nemesis::QosParams& request) -> bool {
    nemesis::Kernel* kernel = end.ws != nullptr ? end.ws->kernel() : nullptr;
    nemesis::PeriodicDomain* handler = end.handler->get();
    if (qos.slice <= 0) {
      if (handler != nullptr) {
        ReleaseCpuEnd(end.handler, kernel);
      }
      return true;
    }
    if (kernel == nullptr) {
      return false;
    }
    if (handler != nullptr && handler->kernel() != nullptr) {
      if (!kernel->UpdateQos(handler, qos)) {
        return false;
      }
      if (manager_ != nullptr && manager_->kernel() == kernel) {
        manager_->Register(handler, manager_weight_, request,
                           [this, src = end.source_end](double granted) {
                             OnGrantChanged(src, granted);
                           });
      }
      return true;
    }
    auto domain = std::make_unique<nemesis::PeriodicDomain>(
        system_->simulator(), name_ + (end.source_end ? "/src" : "/snk"), qos, qos.slice,
        qos.period);
    if (!kernel->AddDomain(domain.get())) {
      return false;
    }
    if (manager_ != nullptr && manager_->kernel() == kernel) {
      manager_->Register(domain.get(), manager_weight_, request,
                         [this, src = end.source_end](double granted) {
                           OnGrantChanged(src, granted);
                         });
    }
    *end.handler = std::move(domain);
    return true;
  };
  auto original_request = [this](const CpuEnd& end) -> const nemesis::QosParams& {
    return end.source_end ? requested_source_cpu_ : requested_sink_cpu_;
  };
  for (int i = 0; i < 2; ++i) {
    if (!apply_cpu(ends[i], ends[i].wanted, ends[i].wanted)) {
      // Roll back the ends already re-contracted, then the network.
      for (int j = 0; j < i; ++j) {
        apply_cpu(ends[j], ends[j].previous, original_request(ends[j]));
      }
      rollback_network();
      nemesis::Kernel* kernel = ends[i].ws != nullptr ? ends[i].ws->kernel() : nullptr;
      report.failure = ends[i].failure;
      if (kernel == nullptr) {
        report.verdict = AdmitVerdict::kRejected;
        report.detail = "no kernel attached to the host";
        return report;
      }
      const double headroom = CpuHeadroom(kernel) + ends[i].previous.Utilization();
      const sim::DurationNs slice = SliceFor(headroom, ends[i].wanted.period);
      report.detail = "CPU demand exceeds Atropos headroom";
      if (slice > 0) {
        report.verdict = AdmitVerdict::kCounterOffer;
        StreamSpec counter = spec;
        nemesis::QosParams& cpu = ends[i].source_end ? counter.source_cpu : counter.sink_cpu;
        cpu.slice = slice;
        report.counter_offer = counter;
      } else {
        report.verdict = AdmitVerdict::kRejected;
      }
      return report;
    }
  }

  // 3. Disk rate at the file server.
  if (spec.disk_bps > 0 && (storage_ == nullptr || file_ < 0)) {
    apply_cpu(ends[0], ends[0].previous, original_request(ends[0]));
    apply_cpu(ends[1], ends[1].previous, original_request(ends[1]));
    rollback_network();
    report.verdict = AdmitVerdict::kRejected;
    report.failure = AdmitFailure::kDiskBandwidth;
    report.detail = "disk rate demanded but no storage endpoint on the path";
    return report;
  }
  if (storage_ != nullptr && spec.disk_bps != old.disk_bps && file_ >= 0) {
    pfs::PegasusFileServer* server = storage_->server();
    if (disk_reserved_) {
      server->ReleaseStream(file_);
      disk_reserved_ = false;
    }
    if (spec.disk_bps > 0 && !server->ReserveStream(file_, spec.disk_bps)) {
      const int64_t available = server->AvailableStreamBps();
      if (old.disk_bps > 0) {
        server->ReserveStream(file_, old.disk_bps);
        disk_reserved_ = true;
      }
      apply_cpu(ends[0], ends[0].previous, original_request(ends[0]));
      apply_cpu(ends[1], ends[1].previous, original_request(ends[1]));
      rollback_network();
      report.verdict = available > 0 ? AdmitVerdict::kCounterOffer : AdmitVerdict::kRejected;
      report.failure = AdmitFailure::kDiskBandwidth;
      report.detail = "PFS stream budget exhausted";
      if (available > 0) {
        StreamSpec counter = spec;
        counter.disk_bps = available;
        report.counter_offer = counter;
      }
      return report;
    }
    disk_reserved_ = spec.disk_bps > 0;
  }

  // Bind the new contract; the renegotiated demand becomes the long-term
  // request the QoS manager steers toward.
  contract_.granted = spec;
  requested_source_cpu_ = spec.source_cpu;
  requested_sink_cpu_ = spec.sink_cpu;
  if (source_handler_ != nullptr) {
    contract_.granted.source_cpu = source_handler_->qos();
  }
  if (sink_handler_ != nullptr) {
    contract_.granted.sink_cpu = sink_handler_->qos();
  }
  ++contract_.renegotiations;
  if (source_camera_ != nullptr) {
    source_camera_->set_pace_bps(spec.bandwidth_bps);
  }
  report.verdict = AdmitVerdict::kAccepted;
  return report;
}

void StreamSession::Close() {
  if (!active_) {
    return;
  }
  active_ = false;
  atm::Network& network = system_->network();

  // Storage layer: stop the transfer, release the rate reservation.
  if (storage_ != nullptr) {
    if (recording_) {
      storage_->StopRecording(sink_vci_, []() {});
    } else if (file_ >= 0) {
      storage_->StopPlayback(file_);
    }
    if (disk_reserved_) {
      storage_->server()->ReleaseStream(file_);
      disk_reserved_ = false;
    }
  }

  // Display layer: retire the window granted to the data VC.
  if (window_created_ && sink_display_ != nullptr) {
    dev::WindowManager wm(sink_display_);
    wm.DestroyWindow(sink_vci_);
    window_created_ = false;
  }

  // CPU layer: retire the handler domains and their manager registrations.
  ReleaseCpuEnd(&source_handler_, source_ws_ != nullptr ? source_ws_->kernel() : nullptr);
  ReleaseCpuEnd(&sink_handler_, sink_ws_ != nullptr ? sink_ws_->kernel() : nullptr);

  // Network layer: close the VCs, releasing every link reservation.
  if (data_vc_ >= 0) {
    network.CloseVc(data_vc_);
    data_vc_ = -1;
  }
  for (atm::VcId vc : control_vcs_) {
    network.CloseVc(vc);
  }
  control_vcs_.clear();
}

// --- StreamBuilder ---

StreamBuilder::StreamBuilder(PegasusSystem* system, std::string name)
    : system_(system), name_(std::move(name)) {}

StreamBuilder& StreamBuilder::From(Workstation* ws, dev::AtmCamera* camera) {
  source_kind_ = EndpointKind::kWorkstationDevice;
  source_ws_ = ws;
  source_ep_ = ws != nullptr ? ws->device_endpoint(camera) : nullptr;
  source_camera_ = camera;
  return *this;
}

StreamBuilder& StreamBuilder::From(Workstation* ws, dev::AudioCapture* capture) {
  source_kind_ = EndpointKind::kWorkstationDevice;
  source_ws_ = ws;
  source_ep_ = ws != nullptr ? ws->device_endpoint(capture) : nullptr;
  return *this;
}

StreamBuilder& StreamBuilder::FromEndpoint(Workstation* ws, atm::Endpoint* endpoint) {
  source_kind_ = EndpointKind::kWorkstationDevice;
  source_ws_ = ws;
  source_ep_ = endpoint;
  return *this;
}

StreamBuilder& StreamBuilder::FromStorage(StorageNode* storage, pfs::FileId file) {
  source_kind_ = EndpointKind::kStorage;
  source_storage_ = storage;
  source_ep_ = storage != nullptr ? storage->endpoint() : nullptr;
  playback_file_ = file;
  return *this;
}

StreamBuilder& StreamBuilder::To(Workstation* ws, dev::AtmDisplay* display) {
  sink_kind_ = EndpointKind::kWorkstationDevice;
  sink_ws_ = ws;
  sink_ep_ = ws != nullptr ? ws->device_endpoint(display) : nullptr;
  sink_display_ = display;
  return *this;
}

StreamBuilder& StreamBuilder::To(Workstation* ws, dev::AudioPlayback* playback) {
  sink_kind_ = EndpointKind::kWorkstationDevice;
  sink_ws_ = ws;
  sink_ep_ = ws != nullptr ? ws->device_endpoint(playback) : nullptr;
  return *this;
}

StreamBuilder& StreamBuilder::ToEndpoint(Workstation* ws, atm::Endpoint* endpoint) {
  sink_kind_ = EndpointKind::kWorkstationDevice;
  sink_ws_ = ws;
  sink_ep_ = endpoint;
  return *this;
}

StreamBuilder& StreamBuilder::ToStorage(StorageNode* storage, uint32_t stream_id) {
  sink_kind_ = EndpointKind::kStorage;
  sink_storage_ = storage;
  sink_ep_ = storage != nullptr ? storage->endpoint() : nullptr;
  record_stream_id_ = stream_id;
  return *this;
}

StreamBuilder& StreamBuilder::WithSpec(const StreamSpec& spec) {
  spec_ = spec;
  return *this;
}

StreamBuilder& StreamBuilder::WithWindow(int x, int y, int w, int h) {
  window_requested_ = true;
  window_x_ = x;
  window_y_ = y;
  window_w_ = w;
  window_h_ = h;
  return *this;
}

StreamBuilder& StreamBuilder::ManagedBy(nemesis::QosManagerDomain* manager, double weight) {
  manager_ = manager;
  manager_weight_ = weight;
  return *this;
}

StreamBuilder& StreamBuilder::RequestingSourceCpu(const nemesis::QosParams& cpu) {
  requested_source_cpu_ = cpu;
  return *this;
}

StreamBuilder& StreamBuilder::RequestingSinkCpu(const nemesis::QosParams& cpu) {
  requested_sink_cpu_ = cpu;
  return *this;
}

StreamBuilder& StreamBuilder::OnDegrade(StreamSession::DegradeCallback cb) {
  degrade_cb_ = std::move(cb);
  return *this;
}

StreamResult StreamBuilder::Open() {
  StreamResult result;
  AdmissionReport& report = result.report;
  atm::Network& network = system_->network();

  // --- resolve endpoints ---
  if (source_ep_ == nullptr || sink_ep_ == nullptr ||
      source_kind_ == EndpointKind::kNone || sink_kind_ == EndpointKind::kNone) {
    report.verdict = AdmitVerdict::kRejected;
    report.failure = AdmitFailure::kEndpoint;
    report.detail = "source or sink endpoint missing";
    return result;
  }
  StorageNode* storage = sink_storage_ != nullptr ? sink_storage_ : source_storage_;

  // --- cross-layer admission: check every layer before binding any ---
  StreamSpec counter = spec_;
  AdmitFailure first_failure = AdmitFailure::kNone;
  std::string detail;
  auto fail = [&](AdmitFailure failure, const std::string& text) {
    if (first_failure == AdmitFailure::kNone) {
      first_failure = failure;
      detail = text;
    }
  };

  // Network bandwidth, on every hop of the path.
  auto path_available = network.PathAvailableBps(source_ep_, sink_ep_);
  if (!path_available.has_value()) {
    report.verdict = AdmitVerdict::kRejected;
    report.failure = AdmitFailure::kNoPath;
    report.detail = "no switch path between the endpoints";
    return result;
  }
  if (spec_.bandwidth_bps > 0 && *path_available < spec_.bandwidth_bps) {
    counter.bandwidth_bps = *path_available;
    fail(AdmitFailure::kNetworkBandwidth, "a traversed link lacks spare capacity");
  }

  // Latency bound against the path's delivery-time floor.
  if (spec_.latency_bound > 0) {
    auto latency = network.PathLatencyNs(source_ep_, sink_ep_);
    if (latency.has_value() && *latency > spec_.latency_bound) {
      report.verdict = AdmitVerdict::kRejected;
      report.failure = AdmitFailure::kLatency;
      report.detail = "path latency floor exceeds the bound";
      return result;
    }
  }

  // CPU headroom on each host kernel that a contract is demanded of.
  struct CpuCheck {
    const nemesis::QosParams& wanted;
    Workstation* ws;
    nemesis::QosParams& counter_cpu;
    AdmitFailure failure;
  };
  CpuCheck cpu_checks[2] = {
      {spec_.source_cpu, source_ws_, counter.source_cpu, AdmitFailure::kSourceCpu},
      {spec_.sink_cpu, sink_ws_, counter.sink_cpu, AdmitFailure::kSinkCpu},
  };
  double claimed[2] = {0.0, 0.0};
  for (int i = 0; i < 2; ++i) {
    const CpuCheck& check = cpu_checks[i];
    if (check.wanted.slice <= 0) {
      continue;
    }
    nemesis::Kernel* kernel = check.ws != nullptr ? check.ws->kernel() : nullptr;
    if (kernel == nullptr) {
      report.verdict = AdmitVerdict::kRejected;
      report.failure = check.failure;
      report.detail = "no kernel attached to the host";
      return result;
    }
    // Both ends may share one kernel; count what the other end claims.
    double shared = 0.0;
    if (i == 1 && source_ws_ != nullptr && sink_ws_ != nullptr &&
        source_ws_->kernel() == kernel) {
      shared = claimed[0];
    }
    const double headroom = CpuHeadroom(kernel) - shared;
    if (check.wanted.Utilization() > headroom) {
      cpu_checks[i].counter_cpu.slice = SliceFor(headroom, check.wanted.period);
      fail(check.failure, "CPU demand exceeds Atropos headroom");
    } else {
      claimed[i] = check.wanted.Utilization();
    }
  }

  // Disk rate at the file server.
  if (spec_.disk_bps > 0) {
    if (storage == nullptr) {
      report.verdict = AdmitVerdict::kRejected;
      report.failure = AdmitFailure::kDiskBandwidth;
      report.detail = "disk rate demanded but no storage endpoint on the path";
      return result;
    }
    const int64_t available = storage->server()->AvailableStreamBps();
    if (available < spec_.disk_bps) {
      counter.disk_bps = std::max<int64_t>(available, 0);
      fail(AdmitFailure::kDiskBandwidth, "PFS stream budget exhausted");
    }
  }

  if (first_failure != AdmitFailure::kNone) {
    report.failure = first_failure;
    report.detail = detail;
    // A counter-offer is only useful if every demanded layer still has
    // something to give.
    const bool viable = (spec_.bandwidth_bps == 0 || counter.bandwidth_bps > 0) &&
                        (spec_.source_cpu.slice == 0 || counter.source_cpu.slice > 0) &&
                        (spec_.sink_cpu.slice == 0 || counter.sink_cpu.slice > 0) &&
                        (spec_.disk_bps == 0 || counter.disk_bps > 0);
    report.verdict = viable ? AdmitVerdict::kCounterOffer : AdmitVerdict::kRejected;
    if (viable) {
      report.counter_offer = counter;
    }
    return result;
  }

  // --- every layer accepts: bind the contract ---
  auto session = std::unique_ptr<StreamSession>(new StreamSession());
  StreamSession* s = session.get();
  s->name_ = name_;
  s->system_ = system_;
  s->source_ws_ = source_ws_;
  s->sink_ws_ = sink_ws_;
  s->source_ep_ = source_ep_;
  s->sink_ep_ = sink_ep_;
  s->source_camera_ = source_camera_;
  s->sink_display_ = sink_display_;
  s->storage_ = storage;
  s->recording_ = sink_storage_ != nullptr;
  s->manager_ = manager_;
  s->manager_weight_ = manager_weight_;
  s->requested_source_cpu_ = requested_source_cpu_.value_or(spec_.source_cpu);
  s->requested_sink_cpu_ = requested_sink_cpu_.value_or(spec_.sink_cpu);
  s->degrade_cb_ = std::move(degrade_cb_);
  s->active_ = true;

  // Network: the data VC carries the reservation; control VCs are
  // best-effort, as in the paper's signalling.
  auto data = network.OpenVc(source_ep_, sink_ep_, atm::QosSpec{spec_.bandwidth_bps});
  if (!data.has_value()) {
    report.verdict = AdmitVerdict::kRejected;
    report.failure = AdmitFailure::kNetworkBandwidth;
    report.detail = "VC establishment failed after admission";
    s->active_ = false;
    return result;
  }
  s->data_vc_ = data->id;
  s->source_vci_ = data->source_vci;
  s->sink_vci_ = data->destination_vci;

  bool control_failed = false;
  if (source_kind_ == EndpointKind::kWorkstationDevice &&
      sink_kind_ == EndpointKind::kWorkstationDevice) {
    // Control duplex: sink host -> source host (start/stop, mode select,
    // sync), plus the reverse path, as every Pegasus device pairs (§2.2).
    auto control = network.OpenDuplex(sink_ws_->host(), source_ws_->host());
    if (control.has_value()) {
      s->control_vcs_ = {control->first.id, control->second.id};
      s->control_send_vci_ = control->first.source_vci;
      s->control_receive_vci_ = control->second.destination_vci;
    } else {
      control_failed = true;
    }
  } else if (storage != nullptr) {
    // Control stream from the managing host to the file server, which "can
    // also be viewed as a multimedia device" (§2.2): index marks ride here.
    Workstation* managing = sink_storage_ != nullptr ? source_ws_ : sink_ws_;
    if (managing != nullptr) {
      auto control = network.OpenVc(managing->host(), storage->endpoint());
      if (control.has_value()) {
        s->control_vcs_ = {control->id};
        s->control_send_vci_ = control->source_vci;
        s->control_receive_vci_ = control->destination_vci;
      } else {
        control_failed = true;
      }
    }
  }
  if (control_failed) {
    // A session without its control path is not the contract that was asked
    // for (index marks and device control would vanish silently).
    s->Close();
    report.verdict = AdmitVerdict::kRejected;
    report.failure = AdmitFailure::kNoPath;
    report.detail = "control VC establishment failed";
    system_->AdoptSession(std::move(session));
    return result;
  }

  // CPU: bind the per-end handler domains through scheduler admission.
  struct CpuBind {
    std::unique_ptr<nemesis::PeriodicDomain>* handler;
    const nemesis::QosParams& qos;
    Workstation* ws;
    const char* suffix;
    AdmitFailure failure;
    bool source_end;
  };
  CpuBind binds[2] = {
      {&s->source_handler_, spec_.source_cpu, source_ws_, "/src", AdmitFailure::kSourceCpu,
       true},
      {&s->sink_handler_, spec_.sink_cpu, sink_ws_, "/snk", AdmitFailure::kSinkCpu, false},
  };
  for (const CpuBind& bind : binds) {
    if (bind.qos.slice <= 0) {
      continue;
    }
    nemesis::Kernel* kernel = bind.ws->kernel();
    auto domain = std::make_unique<nemesis::PeriodicDomain>(
        system_->simulator(), name_ + bind.suffix, bind.qos, bind.qos.slice, bind.qos.period);
    if (!kernel->AddDomain(domain.get())) {
      s->Close();
      report.verdict = AdmitVerdict::kRejected;
      report.failure = bind.failure;
      report.detail = "scheduler admission refused the contract after the headroom check";
      system_->AdoptSession(std::move(session));
      return result;
    }
    if (manager_ != nullptr && manager_->kernel() == kernel) {
      const nemesis::QosParams requested =
          bind.source_end ? s->requested_source_cpu_ : s->requested_sink_cpu_;
      manager_->Register(domain.get(), manager_weight_, requested,
                         [s, src = bind.source_end](double granted) {
                           s->OnGrantChanged(src, granted);
                         });
    }
    *bind.handler = std::move(domain);
  }

  // Storage: start the transfer under the rate reservation.
  if (sink_storage_ != nullptr) {
    s->file_ = sink_storage_->StartRecording(s->sink_vci_, s->control_receive_vci_,
                                             record_stream_id_);
  } else if (source_storage_ != nullptr) {
    s->file_ = playback_file_;
  }
  if (spec_.disk_bps > 0 && storage != nullptr && s->file_ >= 0) {
    if (!storage->server()->ReserveStream(s->file_, spec_.disk_bps)) {
      s->Close();
      report.verdict = AdmitVerdict::kRejected;
      report.failure = AdmitFailure::kDiskBandwidth;
      report.detail = "PFS reservation refused after the budget check";
      system_->AdoptSession(std::move(session));
      return result;
    }
    s->disk_reserved_ = true;
  }

  // Display: the window manager grants the data VC a window on the screen.
  if (sink_display_ != nullptr && window_requested_) {
    int w = window_w_;
    int h = window_h_;
    if ((w == 0 || h == 0) && source_camera_ != nullptr) {
      w = source_camera_->config().width;
      h = source_camera_->config().height;
    }
    dev::WindowManager wm(sink_display_);
    wm.CreateWindow(s->sink_vci_, window_x_, window_y_, w, h);
    s->window_created_ = true;
  }

  // Pace the source to the granted bandwidth so the reservation holds.
  if (source_camera_ != nullptr && spec_.bandwidth_bps > 0) {
    source_camera_->set_pace_bps(spec_.bandwidth_bps);
  }

  s->contract_.granted = spec_;
  s->contract_.hop_count = data->hop_count;
  s->contract_.established_at = system_->simulator()->now();

  report.verdict = AdmitVerdict::kAccepted;
  report.failure = AdmitFailure::kNone;
  result.session = s;
  system_->AdoptSession(std::move(session));
  return result;
}

}  // namespace pegasus::core
