// The unified cross-layer QoS stream API.
//
// The paper's thesis is that multimedia needs *end-to-end* guarantees:
// processor time from the Atropos scheduler (§3.3), network bandwidth from
// ATM signalling (§4) and disk rate from the Pegasus File Server (§5),
// negotiated together per stream. A StreamSpec states what a stream needs
// from every layer; StreamBuilder admission-controls the full path —
// bandwidth on every traversed link, CPU headroom on the source and sink
// hosts, disk rate at the storage server — and either binds the whole
// contract (VC pacing, per-stream handler domains, PFS reservation, a
// window on the sink display) or rejects it with a counter-offer stating
// the largest contract each layer could still grant. An established
// StreamSession can re-negotiate in place and hears about QoS-manager
// degradation through a callback, so the feedback loop of §3.3 spans
// layers. Teardown releases all three layers' reservations.
//
// A stream may be a multi-leg *pipeline*: Via() routes it through compute
// servers (Figure 4) that process the media in transit, and the whole chain
// — every leg's links, every compute stage's CPU, both end hosts' CPU and
// the disk rate — is admitted atomically as ONE contract. When admission
// fails, the report carries a single joint counter-offer computed across
// all failing resources in one pass: each overcommitted link scales the
// legs crossing it proportionally, each overcommitted kernel scales the
// CPU contracts it would host, and the disk clamp rides in the same spec.
#ifndef PEGASUS_SRC_CORE_STREAM_H_
#define PEGASUS_SRC_CORE_STREAM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/atm/network.h"
#include "src/core/storage_node.h"
#include "src/core/workstation.h"
#include "src/devices/processing.h"
#include "src/nemesis/qos.h"
#include "src/nemesis/qos_manager.h"
#include "src/nemesis/workloads.h"
#include "src/pfs/server.h"

namespace pegasus::core {

class ComputeNode;
class PegasusSystem;
class StreamBuilder;

enum class MediaType { kVideo, kAudio, kData };

// Per-leg quantities of a pipeline. Leg i spans the i-th pair of adjacent
// pipeline nodes; for every leg but the last, the node the leg ends on is a
// compute server and `compute_cpu` is the CPU contract its processing stage
// demands there. On Open(), a missing or inherit-valued entry takes the
// stream-wide `bandwidth_bps`; on Renegotiate() of a pipeline it keeps the
// leg's currently granted value (granted specs always carry explicit legs,
// so editing `contract().granted` is the natural way to renegotiate — the
// stream-wide `bandwidth_bps` knob is ignored by pipeline renegotiation).
struct LegSpec {
  static constexpr int64_t kInheritBps = -1;
  // Peak bandwidth to reserve on every link of this leg. kInheritBps
  // defers to the stream-wide default; 0 is best effort.
  int64_t bandwidth_bps = kInheritBps;
  // CPU contract for the compute stage at the node this leg ends on,
  // admitted against that node's Atropos kernel. Ignored on the final leg
  // (the sink end uses StreamSpec::sink_cpu). slice == 0 = no demand.
  nemesis::QosParams compute_cpu = nemesis::QosParams{0, sim::Milliseconds(100), true};
};

// What a stream asks of — or is granted by — every layer. Fields left at
// zero are "no demand on this layer" and are skipped by admission.
struct StreamSpec {
  MediaType media = MediaType::kData;
  // Nominal presentation rate (frames or packets per second); informational.
  double frame_rate = 0.0;
  // Peak network bandwidth to reserve on every traversed link. 0 = best
  // effort (never rejected by the network). For pipelines this is the
  // default every leg without an explicit LegSpec entry inherits.
  int64_t bandwidth_bps = 0;
  // End-to-end network latency bound, summed over every leg. 0 =
  // unconstrained. Admission rejects chains whose propagation plus per-hop
  // serialisation exceed it.
  sim::DurationNs latency_bound = 0;
  // CPU contract for the protocol/decode work at each end, admitted against
  // the host kernel's Atropos headroom. slice == 0 = no CPU demand.
  nemesis::QosParams source_cpu = nemesis::QosParams{0, sim::Milliseconds(100), true};
  nemesis::QosParams sink_cpu = nemesis::QosParams{0, sim::Milliseconds(100), true};
  // Disk rate to reserve at the Pegasus File Server when a storage endpoint
  // is on the path, in bytes per second. 0 = no reservation.
  int64_t disk_bps = 0;
  // Per-leg overrides for multi-leg pipelines (one leg per Via() stage plus
  // the final leg to the sink). May be shorter than the pipeline; missing
  // entries inherit as described on LegSpec.
  std::vector<LegSpec> legs;

  // The bandwidth leg `leg` asks for, with inheritance resolved.
  int64_t LegBandwidthBps(size_t leg) const {
    if (leg < legs.size() && legs[leg].bandwidth_bps != LegSpec::kInheritBps) {
      return legs[leg].bandwidth_bps;
    }
    return bandwidth_bps;
  }
  // The CPU contract demanded of the compute stage terminating leg `leg`.
  nemesis::QosParams LegComputeCpu(size_t leg) const {
    if (leg < legs.size()) {
      return legs[leg].compute_cpu;
    }
    return nemesis::QosParams{0, sim::Milliseconds(100), true};
  }

  static StreamSpec Video(double fps, int64_t bandwidth_bps) {
    StreamSpec s;
    s.media = MediaType::kVideo;
    s.frame_rate = fps;
    s.bandwidth_bps = bandwidth_bps;
    return s;
  }
  static StreamSpec Audio(int64_t bandwidth_bps) {
    StreamSpec s;
    s.media = MediaType::kAudio;
    s.bandwidth_bps = bandwidth_bps;
    return s;
  }
  static StreamSpec BestEffort() { return StreamSpec{}; }
};

enum class AdmitVerdict {
  kAccepted,      // the full contract is bound
  kCounterOffer,  // rejected, but `counter_offer` states an admissible spec
  kRejected,      // rejected with nothing useful to offer
};

// --- the adaptation plane (§3.3's feedback loop spanning all layers) ---
//
// How a session's application degrades when any layer loses capacity. The
// QoS manager's grant reviews, the network's congestion signal and the file
// server's budget-pressure hook all funnel into ONE proportional cross-layer
// target, applied through a single joint Renegotiate() — so no layer is left
// paying for throughput another layer can no longer deliver.
enum class AdaptationMode {
  // Scale the presentation rate: fewer frames, each at full fidelity.
  kFrameRateScaling,
  // Keep the frame rate, shrink bits per frame (coarser quantisation,
  // fewer tiles).
  kQualityScaling,
  // Cross-layer contracts hold; only manager-owned CPU moves.
  kHold,
};

struct AdaptationPolicy {
  AdaptationMode mode = AdaptationMode::kFrameRateScaling;
  // Never degrade below this fraction of the nominal contract.
  double floor = 0.1;
  // Ignore target moves smaller than this. The manager's EWMA steps all aim
  // at one steady-state share, so a policy adapts once per real change
  // instead of once per epoch.
  double hysteresis = 0.02;
  // EWMA over successive cross-layer targets, in (0, 1]; 1 = jump straight
  // to the steady-state target.
  double smoothing = 1.0;
};

// One adaptation-plane decision, with the per-layer movement it caused.
struct AdaptationEvent {
  enum class Trigger { kCpuGrant, kNetworkCongestion, kDiskPressure, kManual };
  Trigger trigger = Trigger::kManual;
  // For kCpuGrant: why the manager moved the grant (reclaim cuts hold the
  // other layers — the stream is idle by choice, not degraded).
  nemesis::GrantReason reason = nemesis::GrantReason::kContention;
  // The smoothed, floor-clamped fraction of nominal this event aimed at.
  double target_fraction = 1.0;
  bool applied = false;  // the joint renegotiation was accepted
  bool held = false;     // policy held (kHold mode, hysteresis, or reclaim)
  // Per-layer state around the event: CPU utilisation summed over every
  // end and compute stage, network bps summed over every leg, disk bytes/s.
  double cpu_util_before = 0.0;
  double cpu_util_after = 0.0;
  int64_t net_bps_before = 0;
  int64_t net_bps_after = 0;
  int64_t disk_bps_before = 0;
  int64_t disk_bps_after = 0;
};

const char* AdaptationTriggerName(AdaptationEvent::Trigger trigger);

// Which layer turned the stream away.
enum class AdmitFailure {
  kNone,
  kEndpoint,          // source/sink/via endpoint missing or unattached
  kNoPath,            // no switch path along one of the legs
  kNetworkBandwidth,  // a traversed link lacks spare capacity
  kLatency,           // the chain cannot meet the latency bound
  kSourceCpu,         // source host kernel lacks CPU headroom (or a kernel)
  kSinkCpu,           // sink host kernel lacks CPU headroom (or a kernel)
  kComputeCpu,        // a compute node's kernel lacks headroom (or a kernel)
  kDiskBandwidth,     // PFS stream budget exhausted
};

const char* AdmitFailureName(AdmitFailure failure);

struct AdmissionReport {
  AdmitVerdict verdict = AdmitVerdict::kRejected;
  // The first failing resource in path order; kNone on acceptance.
  AdmitFailure failure = AdmitFailure::kNone;
  // EVERY failing resource, in path order (legs, then source CPU, compute
  // stages, sink CPU, then disk) — admission checks all layers in one pass
  // rather than stopping at the first refusal.
  std::vector<AdmitFailure> failures;
  std::string detail;
  // On kCounterOffer: the requested spec clamped to what every layer could
  // still grant right now, jointly feasible across all failing resources.
  std::optional<StreamSpec> counter_offer;

  bool ok() const { return verdict == AdmitVerdict::kAccepted; }
};

// The bound end-to-end contract of an established session.
struct QosContract {
  StreamSpec granted;
  int hop_count = 0;  // summed over every leg
  sim::TimeNs established_at = 0;
  int renegotiations = 0;
};

// One leaf of a one-to-many stream (StreamBuilder::ToMany / AddSink). A
// workstation leaf names the endpoint packets should land on (and optionally
// a display to window them); a storage leaf records the stream there.
struct MulticastSink {
  Workstation* ws = nullptr;
  atm::Endpoint* endpoint = nullptr;   // any endpoint on `ws`
  dev::AtmDisplay* display = nullptr;  // bind a window at this leaf
  StorageNode* storage = nullptr;      // record the stream at this leaf
  uint32_t record_stream_id = 1;       // with storage: control-stream id
};

// An admitted stream: one VC per pipeline leg (each paced to its granted
// bandwidth), the control VC(s), the per-end handler domains and per-stage
// compute domains holding the CPU contracts, the PFS reservation and the
// sink window — all released together by Close().
class StreamSession {
 public:
  // CPU contract "ends": 0 = source host, 1 = sink host, 2+k = the compute
  // stage terminating leg k.
  static constexpr int kSourceEnd = 0;
  static constexpr int kSinkEnd = 1;

  // One bound leg of the pipeline, in path order.
  struct Leg {
    atm::VcId vc = -1;
    // VCI stamped on packets entering this leg.
    atm::Vci source_vci = atm::kVciUnassigned;
    // VCI observed on packets leaving this leg.
    atm::Vci sink_vci = atm::kVciUnassigned;
    int64_t granted_bps = 0;
    int hop_count = 0;
    // The compute node this leg terminates at (null for the final leg).
    ComputeNode* compute = nullptr;
    // The processing stage instantiated there.
    dev::TileProcessor* processor = nullptr;
    // The handler domain holding the stage's CPU contract on the compute
    // node's kernel (null when no CPU was demanded).
    std::unique_ptr<nemesis::PeriodicDomain> handler;
  };

  // Invoked after the QoS manager degraded (or restored) one of the
  // session's CPU contracts; `contract().granted` is already updated.
  using DegradeCallback = std::function<void(const QosContract& contract)>;

  ~StreamSession();

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  const std::string& name() const { return name_; }
  const QosContract& contract() const { return contract_; }
  bool active() const { return active_; }

  // --- data plane handles ---
  // The pipeline's legs in path order; size 1 for a point-to-point stream.
  const std::vector<Leg>& legs() const { return legs_; }
  int leg_count() const { return static_cast<int>(legs_.size()); }
  // The first leg's VC (the data VC of a point-to-point stream).
  atm::VcId data_vc() const { return legs_.empty() ? -1 : legs_.front().vc; }
  // VCI the source device must stamp on outgoing packets.
  atm::Vci source_vci() const {
    return legs_.empty() ? atm::kVciUnassigned : legs_.front().source_vci;
  }
  // VCI the sink observes on delivered packets.
  atm::Vci sink_vci() const {
    return legs_.empty() ? atm::kVciUnassigned : legs_.back().sink_vci;
  }
  // Control stream: managing host -> far end (index marks, start/stop).
  atm::Vci control_send_vci() const { return control_send_vci_; }
  atm::Vci control_receive_vci() const { return control_receive_vci_; }
  // The continuous file a ToStorage session records into, the file a
  // FromStorage session plays, or the first recording leaf's file of a
  // one-to-many session; -1 otherwise.
  pfs::FileId file() const { return file_; }
  // The handler domains holding the CPU contracts (null when no CPU was
  // demanded at that end). Exposed so callers can observe manager grants.
  nemesis::PeriodicDomain* source_handler() const { return source_handler_.get(); }
  nemesis::PeriodicDomain* sink_handler() const { return sink_handler_.get(); }

  // --- one-to-many sessions (StreamBuilder::ToMany) ---
  bool is_multicast() const { return multicast_; }
  int sink_count() const { return static_cast<int>(mcast_sinks_.size()); }
  // The VCI `endpoint` observes on delivered packets, if it is a leaf.
  std::optional<atm::Vci> SinkVci(const atm::Endpoint* endpoint) const;
  // Grafts one more leaf onto the tree. Only the NEW branch path is
  // admitted — links the tree already crosses are free, sink CPU is
  // admitted against the leaf host alone, and every other contract of the
  // session is untouched. A late viewer joining a popular channel costs
  // O(graft path), not a re-admission of the whole tree.
  AdmissionReport AddSink(const MulticastSink& sink);
  // Prunes the leaf delivering to `endpoint`, releasing its window,
  // recording, CPU contract and every tree branch that served only it.
  // Refuses to remove the last leaf — Close() the session instead.
  bool RemoveSink(const atm::Endpoint* endpoint);

  // Re-negotiates the contract in place, all-or-nothing: every layer's new
  // demand — bandwidth on each leg's own links (no route churn), CPU at
  // both ends and every compute stage, disk rate — is checked jointly
  // BEFORE anything is re-bound, so a refusal leaves the original contract
  // fully intact and carries one joint counter-offer across all failing
  // resources.
  AdmissionReport Renegotiate(const StreamSpec& spec);

  // --- the adaptation plane ---
  // States the application's own rate limit as a fraction of nominal and
  // drives one joint cross-layer renegotiation: every leg's bandwidth,
  // every unmanaged CPU contract (end hosts and compute stages), and the
  // disk reservation move together; manager-owned CPU ends keep the
  // manager's grant. Each signal source (application, CPU grants per end,
  // network congestion, disk pressure) holds its own limit and the session
  // always renegotiates toward the MINIMUM of them — a milder signal from
  // one layer never un-degrades a deeper cut from another. The combined
  // target is EWMA-smoothed per the policy, clamped to its floor, and
  // suppressed by hysteresis (the report then reads kAccepted with detail
  // "held"). Requires an AdaptationPolicy (WithAdaptation at build time).
  AdmissionReport AdaptTo(double target_fraction);
  bool has_adaptation() const { return has_adaptation_; }
  const AdaptationPolicy& adaptation_policy() const { return policy_; }
  // Fraction of the nominal contract currently in force (1.0 = full rate).
  double adaptation_fraction() const { return current_fraction_; }
  // The full-rate contract adaptation scales from (the spec granted at
  // Open, with explicit legs).
  const StreamSpec& nominal() const { return nominal_; }
  // Recent adaptation decisions, in order, with per-layer deltas (bounded:
  // the oldest are dropped past 256 entries; the counters are exact).
  const std::vector<AdaptationEvent>& adaptation_log() const { return adaptation_log_; }
  // Joint renegotiations the adaptation plane actually applied.
  int64_t adaptations_applied() const { return adaptations_applied_; }
  // Decisions held (kHold mode, hysteresis, or reclaim) without touching
  // the contract.
  int64_t adaptations_held() const { return adaptations_held_; }

  void set_degrade_callback(DegradeCallback cb) { degrade_cb_ = std::move(cb); }

  // Releases every layer's resources: all legs' VCs and their link
  // reservations, the compute stages and their contract domains, the
  // per-end handler domains (and their QoS-manager registrations), the PFS
  // stream reservation (stopping recording/playback), and the sink window.
  // Idempotent.
  void Close();

 private:
  friend class StreamBuilder;

  StreamSession() = default;

  void ReleaseCpuEnd(std::unique_ptr<nemesis::PeriodicDomain>* handler,
                     nemesis::Kernel* kernel);
  // The handler holding the contract for `end`, or null.
  nemesis::PeriodicDomain* EndHandler(int end) const;
  void OnGrantChanged(int end, const nemesis::GrantUpdate& update);
  // The shared body of Renegotiate and AdaptTo; `update_requests` controls
  // whether spec CPU becomes the new long-term demand registered with the
  // QoS manager (adaptation keeps the original request so grants can grow
  // back toward it).
  AdmissionReport RenegotiateImpl(const StreamSpec& spec, bool update_requests);
  // Renegotiates toward CombinedLimit(), the min over every signal source's
  // current limit fraction.
  AdmissionReport Adapt(AdaptationEvent::Trigger trigger, nemesis::GrantReason reason);
  AdmissionReport Adapt(AdaptationEvent::Trigger trigger, nemesis::GrantReason reason,
                        double cpu_util_before);
  double CombinedLimit() const;
  // The nominal contract scaled to `fraction` per the policy mode, with
  // manager-owned CPU ends left at the manager's current grant.
  StreamSpec ScaledSpec(double fraction) const;
  // Whether `end`'s CPU contract is registered with the QoS manager (the
  // manager, not the adaptation plane, owns its slice then).
  bool EndIsManaged(int end) const;
  double GrantedCpuUtil() const;
  int64_t GrantedNetBps() const;
  int64_t GrantedDiskBps() const;
  // Appends to the bounded log and maintains the exact counters.
  void LogAdaptationEvent(const AdaptationEvent& event);
  // Re-shapes every paced media source to the granted first-leg rate:
  // camera, audio capture, and storage play-out (min of network and disk).
  void ApplySourcePacing();
  // Subscribes the session to Network::SignalCongestion on every leg's VC
  // and to the file server's budget-pressure hook.
  void BindAdaptationHooks();
  // The PFS pressure callback dies with every release-and-re-reserve
  // renegotiation cycle; re-arm it.
  void RebindDiskPressureHook();

  std::string name_;
  PegasusSystem* system_ = nullptr;
  QosContract contract_;
  bool active_ = false;

  // Endpoints.
  Workstation* source_ws_ = nullptr;
  Workstation* sink_ws_ = nullptr;
  atm::Endpoint* source_ep_ = nullptr;
  atm::Endpoint* sink_ep_ = nullptr;
  dev::AtmCamera* source_camera_ = nullptr;
  dev::AudioCapture* source_audio_ = nullptr;
  dev::AtmDisplay* sink_display_ = nullptr;
  StorageNode* storage_ = nullptr;
  bool recording_ = false;

  // One-to-many sessions: per-leaf bindings, in graft order. The tree
  // itself is legs_[0] (vc = the multicast VcId, granted_bps = the ONE
  // per-tree-edge reservation); each leaf adds only its own window,
  // recording, control VC and sink-host CPU contract.
  struct McastSinkBinding {
    MulticastSink sink;
    atm::Vci leaf_vci = atm::kVciUnassigned;
    std::unique_ptr<nemesis::PeriodicDomain> handler;  // sink-host CPU
    atm::VcId control_vc = -1;                         // recording leaves
    pfs::FileId record_file = -1;
    bool window_created = false;
  };
  bool multicast_ = false;
  std::vector<McastSinkBinding> mcast_sinks_;
  // Window geometry display leaves are bound with (WithWindow at build
  // time; AddSink reuses it so late joiners get the same window).
  bool mcast_window_requested_ = false;
  int mcast_window_x_ = 0;
  int mcast_window_y_ = 0;
  int mcast_window_w_ = 0;
  int mcast_window_h_ = 0;
  // Unbinds one leaf's window/recording/CPU/control (not the tree branch).
  void UnbindMulticastSink(McastSinkBinding& b);

  // Network + compute: the bound pipeline.
  std::vector<Leg> legs_;
  std::vector<atm::VcId> control_vcs_;
  atm::Vci control_send_vci_ = atm::kVciUnassigned;
  atm::Vci control_receive_vci_ = atm::kVciUnassigned;

  // CPU.
  std::unique_ptr<nemesis::PeriodicDomain> source_handler_;
  std::unique_ptr<nemesis::PeriodicDomain> sink_handler_;
  // Handlers removed from their kernel stay here, inert, because a pending
  // job-release timer in the simulator may still reference them.
  std::vector<std::unique_ptr<nemesis::PeriodicDomain>> retired_handlers_;
  nemesis::QosManagerDomain* manager_ = nullptr;
  double manager_weight_ = 1.0;
  // What the stream wants long-term at each end — the demand registered
  // with the QoS manager, which may exceed the contract admitted now.
  nemesis::QosParams requested_source_cpu_;
  nemesis::QosParams requested_sink_cpu_;

  // Storage.
  pfs::FileId file_ = -1;
  bool disk_reserved_ = false;

  // Display.
  bool window_created_ = false;

  // Adaptation plane. Each signal source holds its own limit fraction; the
  // session adapts toward their minimum, so independent degradations
  // compose instead of overwriting each other.
  bool has_adaptation_ = false;
  AdaptationPolicy policy_;
  StreamSpec nominal_;
  double current_fraction_ = 1.0;
  double app_limit_ = 1.0;   // stated via AdaptTo
  double disk_limit_ = 1.0;  // latest budget-pressure signal
  // Per congested link: deliverable fraction from its latest signal (a
  // severity-0 clear removes the entry). One scalar would let a mild
  // signal on one link un-degrade a deeper cut still in force on another.
  std::map<const atm::Link*, double> net_link_limits_;
  // Per managed CPU end: steady-state share of the long-term request (ends
  // whose grants are self-limited idleness do not constrain the stream).
  std::map<int, double> cpu_end_limits_;
  // Bounded event history (oldest dropped past kAdaptationLogCap); the
  // counters below are exact over the session lifetime.
  std::vector<AdaptationEvent> adaptation_log_;
  int64_t adaptations_applied_ = 0;
  int64_t adaptations_held_ = 0;

  DegradeCallback degrade_cb_;
};

struct StreamResult {
  AdmissionReport report;
  // Non-null iff report.ok(). Owned by the PegasusSystem.
  StreamSession* session = nullptr;
};

// Fluent construction of a cross-layer stream:
//
//   auto r = system.BuildStream("phone/video")
//                .From(alice, camera)
//                .To(bob, display)
//                .WithSpec(StreamSpec::Video(25, 8'000'000))
//                .WithWindow(240, 180)
//                .Open();
//   if (r.report.ok()) camera->Start(r.session->source_vci());
//
// A pipeline detours through compute servers, still as one contract:
//
//   core::StreamSpec spec = core::StreamSpec::Video(25, 8'000'000);
//   spec.legs.resize(2);
//   spec.legs[0].compute_cpu = QosParams::Guaranteed(ms(10), ms(40));
//   auto r = system.BuildStream("filtered")
//                .From(alice, camera)
//                .Via(compute, stage_config)
//                .To(bob, display)
//                .WithSpec(spec)
//                .Open();
class StreamBuilder {
 public:
  StreamBuilder(PegasusSystem* system, std::string name);

  StreamBuilder& From(Workstation* ws, dev::AtmCamera* camera);
  StreamBuilder& From(Workstation* ws, dev::AudioCapture* capture);
  // Any device endpoint on `ws` (tap points, relays, the host NIC).
  StreamBuilder& FromEndpoint(Workstation* ws, atm::Endpoint* endpoint);
  // Play-out of an existing continuous file from the storage server.
  StreamBuilder& FromStorage(StorageNode* storage, pfs::FileId file);

  // Routes the stream through `node` on its way to the sink: a processing
  // stage running `stage` is instantiated there, wired between the
  // incoming and outgoing legs' VCs. The stage's CPU demand comes from
  // spec.legs[k].compute_cpu (k = the Via() call's position) and is
  // admitted against the node's attached kernel atomically with every
  // other layer of the pipeline. May be called repeatedly for longer
  // chains.
  StreamBuilder& Via(ComputeNode* node, dev::TileProcessor::Config stage);

  StreamBuilder& To(Workstation* ws, dev::AtmDisplay* display);
  StreamBuilder& To(Workstation* ws, dev::AudioPlayback* playback);
  StreamBuilder& ToEndpoint(Workstation* ws, atm::Endpoint* endpoint);
  // Record into a fresh continuous file; index marks for `stream_id` on the
  // control VC drive the time index.
  StreamBuilder& ToStorage(StorageNode* storage, uint32_t stream_id = 1);
  // One-to-many: the stream fans out over ONE shared multicast tree to
  // every listed sink (displays, plain endpoints, storage recorders — may
  // be mixed). Joint admission charges each tree edge once, so a trunk
  // shared by a thousand viewers reserves one stream's bandwidth; the
  // counter-offer scales the whole tree as a unit. Mutually exclusive with
  // To*/Via/ManagedBy. Late joins ride StreamSession::AddSink.
  StreamBuilder& ToMany(const std::vector<MulticastSink>& sinks);

  StreamBuilder& WithSpec(const StreamSpec& spec);
  // Window on the sink display. w/h default to the source camera image.
  StreamBuilder& WithWindow(int x, int y, int w = 0, int h = 0);
  // Registers the session's CPU contracts with the QoS manager (clients are
  // matched to the manager's kernel), wiring its longer-timescale reviews to
  // the session's degradation callback.
  StreamBuilder& ManagedBy(nemesis::QosManagerDomain* manager, double weight = 1.0);
  // The CPU the stream *wants* long-term at an end, possibly more than the
  // spec admits now; the QoS manager grows the contract toward it as
  // capacity frees and shrinks it under pressure. Defaults to the spec.
  StreamBuilder& RequestingSourceCpu(const nemesis::QosParams& cpu);
  StreamBuilder& RequestingSinkCpu(const nemesis::QosParams& cpu);
  // Attaches an adaptation policy: QoS-manager grant cuts, network
  // congestion signals and disk budget pressure each drive one joint
  // cross-layer renegotiation per the policy, instead of degrading CPU
  // alone.
  StreamBuilder& WithAdaptation(const AdaptationPolicy& policy);
  StreamBuilder& OnDegrade(StreamSession::DegradeCallback cb);

  // Runs cross-layer admission over the whole pipeline and, if every layer
  // accepts, binds the contract. On rejection nothing is left allocated.
  StreamResult Open();

 private:
  enum class EndpointKind { kNone, kWorkstationDevice, kStorage };
  struct ViaStage {
    ComputeNode* node = nullptr;
    dev::TileProcessor::Config config;
  };

  PegasusSystem* system_;
  std::string name_;
  StreamSpec spec_;

  EndpointKind source_kind_ = EndpointKind::kNone;
  EndpointKind sink_kind_ = EndpointKind::kNone;
  Workstation* source_ws_ = nullptr;
  Workstation* sink_ws_ = nullptr;
  atm::Endpoint* source_ep_ = nullptr;
  atm::Endpoint* sink_ep_ = nullptr;
  dev::AtmCamera* source_camera_ = nullptr;
  dev::AudioCapture* source_audio_ = nullptr;
  dev::AtmDisplay* sink_display_ = nullptr;
  StorageNode* source_storage_ = nullptr;
  StorageNode* sink_storage_ = nullptr;
  pfs::FileId playback_file_ = -1;
  uint32_t record_stream_id_ = 1;
  std::vector<ViaStage> vias_;
  std::vector<MulticastSink> multicast_sinks_;

  // The ToMany() open path: one shared tree, joint admission over its
  // deduplicated edge set, per-leaf sink-CPU/window/recording binds.
  StreamResult OpenMulticast();

  bool window_requested_ = false;
  int window_x_ = 0;
  int window_y_ = 0;
  int window_w_ = 0;
  int window_h_ = 0;

  nemesis::QosManagerDomain* manager_ = nullptr;
  double manager_weight_ = 1.0;
  std::optional<nemesis::QosParams> requested_source_cpu_;
  std::optional<nemesis::QosParams> requested_sink_cpu_;
  std::optional<AdaptationPolicy> adaptation_;
  StreamSession::DegradeCallback degrade_cb_;
};

}  // namespace pegasus::core

#endif  // PEGASUS_SRC_CORE_STREAM_H_
