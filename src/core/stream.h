// The unified cross-layer QoS stream API.
//
// The paper's thesis is that multimedia needs *end-to-end* guarantees:
// processor time from the Atropos scheduler (§3.3), network bandwidth from
// ATM signalling (§4) and disk rate from the Pegasus File Server (§5),
// negotiated together per stream. A StreamSpec states what a stream needs
// from every layer; StreamBuilder admission-controls the full path —
// bandwidth on every traversed link, CPU headroom on the source and sink
// hosts, disk rate at the storage server — and either binds the whole
// contract (VC pacing, per-stream handler domains, PFS reservation, a
// window on the sink display) or rejects it with a counter-offer stating
// the largest contract each layer could still grant. An established
// StreamSession can re-negotiate in place and hears about QoS-manager
// degradation through a callback, so the feedback loop of §3.3 spans
// layers. Teardown releases all three layers' reservations.
#ifndef PEGASUS_SRC_CORE_STREAM_H_
#define PEGASUS_SRC_CORE_STREAM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "src/atm/network.h"
#include "src/core/storage_node.h"
#include "src/core/workstation.h"
#include "src/nemesis/qos.h"
#include "src/nemesis/qos_manager.h"
#include "src/nemesis/workloads.h"
#include "src/pfs/server.h"

namespace pegasus::core {

class PegasusSystem;
class StreamBuilder;

enum class MediaType { kVideo, kAudio, kData };

// What a stream asks of — or is granted by — every layer. Fields left at
// zero are "no demand on this layer" and are skipped by admission.
struct StreamSpec {
  MediaType media = MediaType::kData;
  // Nominal presentation rate (frames or packets per second); informational.
  double frame_rate = 0.0;
  // Peak network bandwidth to reserve on every traversed link. 0 = best
  // effort (never rejected by the network).
  int64_t bandwidth_bps = 0;
  // End-to-end network latency bound. 0 = unconstrained. Admission rejects
  // paths whose propagation plus per-hop serialisation exceed it.
  sim::DurationNs latency_bound = 0;
  // CPU contract for the protocol/decode work at each end, admitted against
  // the host kernel's Atropos headroom. slice == 0 = no CPU demand.
  nemesis::QosParams source_cpu = nemesis::QosParams{0, sim::Milliseconds(100), true};
  nemesis::QosParams sink_cpu = nemesis::QosParams{0, sim::Milliseconds(100), true};
  // Disk rate to reserve at the Pegasus File Server when a storage endpoint
  // is on the path, in bytes per second. 0 = no reservation.
  int64_t disk_bps = 0;

  static StreamSpec Video(double fps, int64_t bandwidth_bps) {
    StreamSpec s;
    s.media = MediaType::kVideo;
    s.frame_rate = fps;
    s.bandwidth_bps = bandwidth_bps;
    return s;
  }
  static StreamSpec Audio(int64_t bandwidth_bps) {
    StreamSpec s;
    s.media = MediaType::kAudio;
    s.bandwidth_bps = bandwidth_bps;
    return s;
  }
  static StreamSpec BestEffort() { return StreamSpec{}; }
};

enum class AdmitVerdict {
  kAccepted,      // the full contract is bound
  kCounterOffer,  // rejected, but `counter_offer` states an admissible spec
  kRejected,      // rejected with nothing useful to offer
};

// Which layer turned the stream away.
enum class AdmitFailure {
  kNone,
  kEndpoint,          // source/sink missing or not attached to the network
  kNoPath,            // no switch path between the endpoints
  kNetworkBandwidth,  // a traversed link lacks spare capacity
  kLatency,           // the path cannot meet the latency bound
  kSourceCpu,         // source host kernel lacks CPU headroom (or a kernel)
  kSinkCpu,           // sink host kernel lacks CPU headroom (or a kernel)
  kDiskBandwidth,     // PFS stream budget exhausted
};

const char* AdmitFailureName(AdmitFailure failure);

struct AdmissionReport {
  AdmitVerdict verdict = AdmitVerdict::kRejected;
  AdmitFailure failure = AdmitFailure::kNone;
  std::string detail;
  // On kCounterOffer: the requested spec clamped to what every layer could
  // still grant right now.
  std::optional<StreamSpec> counter_offer;

  bool ok() const { return verdict == AdmitVerdict::kAccepted; }
};

// The bound end-to-end contract of an established session.
struct QosContract {
  StreamSpec granted;
  int hop_count = 0;
  sim::TimeNs established_at = 0;
  int renegotiations = 0;
};

// An admitted stream: the data VC (paced to the granted bandwidth), the
// control VC(s), the per-end handler domains holding the CPU contracts, the
// PFS reservation and the sink window — all released together by Close().
class StreamSession {
 public:
  // Invoked after the QoS manager degraded (or restored) one of the
  // session's CPU contracts; `contract().granted` is already updated.
  using DegradeCallback = std::function<void(const QosContract& contract)>;

  ~StreamSession();

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  const std::string& name() const { return name_; }
  const QosContract& contract() const { return contract_; }
  bool active() const { return active_; }

  // --- data plane handles ---
  atm::VcId data_vc() const { return data_vc_; }
  // VCI the source device must stamp on outgoing packets.
  atm::Vci source_vci() const { return source_vci_; }
  // VCI the sink observes on delivered packets.
  atm::Vci sink_vci() const { return sink_vci_; }
  // Control stream: managing host -> far end (index marks, start/stop).
  atm::Vci control_send_vci() const { return control_send_vci_; }
  atm::Vci control_receive_vci() const { return control_receive_vci_; }
  // The continuous file a ToStorage session records into, or the file a
  // FromStorage session plays; -1 otherwise.
  pfs::FileId file() const { return file_; }
  // The handler domains holding the CPU contracts (null when no CPU was
  // demanded at that end). Exposed so callers can observe manager grants.
  nemesis::PeriodicDomain* source_handler() const { return source_handler_.get(); }
  nemesis::PeriodicDomain* sink_handler() const { return sink_handler_.get(); }

  // Re-negotiates the contract in place: bandwidth deltas are re-admitted on
  // the VC's own links (no route churn), CPU through Kernel::UpdateQos, disk
  // by release-and-re-reserve. All-or-nothing — on rejection every layer
  // keeps the old contract.
  AdmissionReport Renegotiate(const StreamSpec& spec);

  void set_degrade_callback(DegradeCallback cb) { degrade_cb_ = std::move(cb); }

  // Releases every layer's resources: VCs and their link reservations, the
  // handler domains (and their QoS-manager registrations), the PFS stream
  // reservation (stopping recording/playback), and the sink window.
  // Idempotent.
  void Close();

 private:
  friend class StreamBuilder;

  StreamSession() = default;

  // Creates or retires the per-end handler domains to match `spec`.
  bool BindCpu(const StreamSpec& spec, AdmissionReport* report);
  void ReleaseCpuEnd(std::unique_ptr<nemesis::PeriodicDomain>* handler,
                     nemesis::Kernel* kernel);
  void OnGrantChanged(bool source_end, double granted_util);

  std::string name_;
  PegasusSystem* system_ = nullptr;
  QosContract contract_;
  bool active_ = false;

  // Endpoints.
  Workstation* source_ws_ = nullptr;
  Workstation* sink_ws_ = nullptr;
  atm::Endpoint* source_ep_ = nullptr;
  atm::Endpoint* sink_ep_ = nullptr;
  dev::AtmCamera* source_camera_ = nullptr;
  dev::AtmDisplay* sink_display_ = nullptr;
  StorageNode* storage_ = nullptr;
  bool recording_ = false;

  // Network.
  atm::VcId data_vc_ = -1;
  std::vector<atm::VcId> control_vcs_;
  atm::Vci source_vci_ = atm::kVciUnassigned;
  atm::Vci sink_vci_ = atm::kVciUnassigned;
  atm::Vci control_send_vci_ = atm::kVciUnassigned;
  atm::Vci control_receive_vci_ = atm::kVciUnassigned;

  // CPU.
  std::unique_ptr<nemesis::PeriodicDomain> source_handler_;
  std::unique_ptr<nemesis::PeriodicDomain> sink_handler_;
  // Handlers removed from their kernel stay here, inert, because a pending
  // job-release timer in the simulator may still reference them.
  std::vector<std::unique_ptr<nemesis::PeriodicDomain>> retired_handlers_;
  nemesis::QosManagerDomain* manager_ = nullptr;
  double manager_weight_ = 1.0;
  // What the stream wants long-term at each end — the demand registered
  // with the QoS manager, which may exceed the contract admitted now.
  nemesis::QosParams requested_source_cpu_;
  nemesis::QosParams requested_sink_cpu_;

  // Storage.
  pfs::FileId file_ = -1;
  bool disk_reserved_ = false;

  // Display.
  bool window_created_ = false;

  DegradeCallback degrade_cb_;
};

struct StreamResult {
  AdmissionReport report;
  // Non-null iff report.ok(). Owned by the PegasusSystem.
  StreamSession* session = nullptr;
};

// Fluent construction of a cross-layer stream:
//
//   auto r = system.BuildStream("phone/video")
//                .From(alice, camera)
//                .To(bob, display)
//                .WithSpec(StreamSpec::Video(25, 8'000'000))
//                .WithWindow(240, 180)
//                .Open();
//   if (r.report.ok()) camera->Start(r.session->source_vci());
class StreamBuilder {
 public:
  StreamBuilder(PegasusSystem* system, std::string name);

  StreamBuilder& From(Workstation* ws, dev::AtmCamera* camera);
  StreamBuilder& From(Workstation* ws, dev::AudioCapture* capture);
  // Any device endpoint on `ws` (tap points, relays, the host NIC).
  StreamBuilder& FromEndpoint(Workstation* ws, atm::Endpoint* endpoint);
  // Play-out of an existing continuous file from the storage server.
  StreamBuilder& FromStorage(StorageNode* storage, pfs::FileId file);

  StreamBuilder& To(Workstation* ws, dev::AtmDisplay* display);
  StreamBuilder& To(Workstation* ws, dev::AudioPlayback* playback);
  StreamBuilder& ToEndpoint(Workstation* ws, atm::Endpoint* endpoint);
  // Record into a fresh continuous file; index marks for `stream_id` on the
  // control VC drive the time index.
  StreamBuilder& ToStorage(StorageNode* storage, uint32_t stream_id = 1);

  StreamBuilder& WithSpec(const StreamSpec& spec);
  // Window on the sink display. w/h default to the source camera image.
  StreamBuilder& WithWindow(int x, int y, int w = 0, int h = 0);
  // Registers the session's CPU contracts with the QoS manager (clients are
  // matched to the manager's kernel), wiring its longer-timescale reviews to
  // the session's degradation callback.
  StreamBuilder& ManagedBy(nemesis::QosManagerDomain* manager, double weight = 1.0);
  // The CPU the stream *wants* long-term at an end, possibly more than the
  // spec admits now; the QoS manager grows the contract toward it as
  // capacity frees and shrinks it under pressure. Defaults to the spec.
  StreamBuilder& RequestingSourceCpu(const nemesis::QosParams& cpu);
  StreamBuilder& RequestingSinkCpu(const nemesis::QosParams& cpu);
  StreamBuilder& OnDegrade(StreamSession::DegradeCallback cb);

  // Runs cross-layer admission and, if every layer accepts, binds the
  // contract. On rejection nothing is left allocated.
  StreamResult Open();

 private:
  enum class EndpointKind { kNone, kWorkstationDevice, kStorage };

  PegasusSystem* system_;
  std::string name_;
  StreamSpec spec_;

  EndpointKind source_kind_ = EndpointKind::kNone;
  EndpointKind sink_kind_ = EndpointKind::kNone;
  Workstation* source_ws_ = nullptr;
  Workstation* sink_ws_ = nullptr;
  atm::Endpoint* source_ep_ = nullptr;
  atm::Endpoint* sink_ep_ = nullptr;
  dev::AtmCamera* source_camera_ = nullptr;
  dev::AtmDisplay* sink_display_ = nullptr;
  StorageNode* source_storage_ = nullptr;
  StorageNode* sink_storage_ = nullptr;
  pfs::FileId playback_file_ = -1;
  uint32_t record_stream_id_ = 1;

  bool window_requested_ = false;
  int window_x_ = 0;
  int window_y_ = 0;
  int window_w_ = 0;
  int window_h_ = 0;

  nemesis::QosManagerDomain* manager_ = nullptr;
  double manager_weight_ = 1.0;
  std::optional<nemesis::QosParams> requested_source_cpu_;
  std::optional<nemesis::QosParams> requested_sink_cpu_;
  StreamSession::DegradeCallback degrade_cb_;
};

}  // namespace pegasus::core

#endif  // PEGASUS_SRC_CORE_STREAM_H_
