// The multimedia compute server (Figure 4).
//
// A network-attached node whose only job is processing media in transit:
// streams are routed camera -> compute server -> display, and each hop stays
// on the ATM fabric. This is the paper's §1 claim made concrete: processing
// video is an ordinary application, not a privilege of dedicated device
// firmware. A Nemesis kernel can be attached to model the node's processing
// cores; pipeline admission then reserves Atropos headroom for every stage
// a stream routes through here, exactly like the per-stream protocol
// handlers on a workstation host.
#ifndef PEGASUS_SRC_CORE_COMPUTE_NODE_H_
#define PEGASUS_SRC_CORE_COMPUTE_NODE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/atm/network.h"
#include "src/atm/transport.h"
#include "src/devices/processing.h"

namespace pegasus::nemesis {
class Kernel;
}

namespace pegasus::core {

class ComputeNode {
 public:
  ComputeNode(atm::Network* network, atm::Switch* sw, int port,
              const std::string& name = "compute");

  const std::string& name() const { return name_; }
  atm::Endpoint* endpoint() const { return endpoint_; }
  atm::MessageTransport* transport() { return &transport_; }

  // The Nemesis kernel modelling this node's processing CPU, when one is
  // attached (not owned). Pipeline admission checks per-stage CPU contracts
  // against it; without a kernel, CPU demands are not admissible here.
  void AttachKernel(nemesis::Kernel* kernel) { kernel_ = kernel; }
  nemesis::Kernel* kernel() const { return kernel_; }

  // Instantiates a processing stage: packets arriving on `in_vci` are
  // transformed and re-emitted on `out_vci` (one simulated core per stage,
  // like the cpu/cpu/cpu boxes of Figure 4).
  dev::TileProcessor* AddStage(atm::Vci in_vci, atm::Vci out_vci,
                               dev::TileProcessor::Config config);
  // Stops feeding `stage`: its in-VCI handler is cleared so no further
  // packets reach it. The processor object stays owned here, inert, until a
  // pending processing-completion event can no longer reference it (it is
  // freed by a later AddStage once drained, so churn stays bounded).
  void DetachStage(dev::TileProcessor* stage);

  // Live stages plus detached ones not yet pruned.
  int stages() const { return static_cast<int>(processors_.size()); }
  // Stages currently receiving traffic.
  int active_stages() const { return static_cast<int>(stage_in_vcis_.size()); }

 private:
  // Frees detached processors whose queued work has fully drained.
  void PruneDetached();

  atm::Endpoint* endpoint_;
  atm::MessageTransport transport_;
  sim::Simulator* sim_;
  std::string name_;
  nemesis::Kernel* kernel_ = nullptr;
  std::vector<std::unique_ptr<dev::TileProcessor>> processors_;
  std::map<dev::TileProcessor*, atm::Vci> stage_in_vcis_;
};

}  // namespace pegasus::core

#endif  // PEGASUS_SRC_CORE_COMPUTE_NODE_H_
