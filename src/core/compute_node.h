// The multimedia compute server (Figure 4).
//
// A network-attached node whose only job is processing media in transit:
// streams are routed camera -> compute server -> display, and each hop stays
// on the ATM fabric. This is the paper's §1 claim made concrete: processing
// video is an ordinary application, not a privilege of dedicated device
// firmware.
#ifndef PEGASUS_SRC_CORE_COMPUTE_NODE_H_
#define PEGASUS_SRC_CORE_COMPUTE_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/atm/network.h"
#include "src/atm/transport.h"
#include "src/devices/processing.h"

namespace pegasus::core {

class ComputeNode {
 public:
  ComputeNode(atm::Network* network, atm::Switch* sw, int port,
              const std::string& name = "compute");

  atm::Endpoint* endpoint() const { return endpoint_; }
  atm::MessageTransport* transport() { return &transport_; }

  // Instantiates a processing stage: packets arriving on `in_vci` are
  // transformed and re-emitted on `out_vci` (one simulated core per stage,
  // like the cpu/cpu/cpu boxes of Figure 4).
  dev::TileProcessor* AddStage(atm::Vci in_vci, atm::Vci out_vci,
                               dev::TileProcessor::Config config);

  int stages() const { return static_cast<int>(processors_.size()); }

 private:
  atm::Endpoint* endpoint_;
  atm::MessageTransport transport_;
  sim::Simulator* sim_;
  std::vector<std::unique_ptr<dev::TileProcessor>> processors_;
};

}  // namespace pegasus::core

#endif  // PEGASUS_SRC_CORE_COMPUTE_NODE_H_
