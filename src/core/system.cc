#include "src/core/system.h"

namespace pegasus::core {

PegasusSystem::PegasusSystem(sim::Simulator* sim) : PegasusSystem(sim, Config()) {}

PegasusSystem::PegasusSystem(sim::Simulator* sim, Config config)
    : sim_(sim), config_(config), network_(sim) {
  backbone_ = network_.AddSwitch("backbone", config_.backbone_ports);
}

void PegasusSystem::Uplink(Workstation* ws) {
  const int local_port = ws->ClaimPort();
  const int backbone_port = next_backbone_port_++;
  network_.ConnectSwitches(ws->local_switch(), local_port, backbone_, backbone_port,
                           config_.backbone_link_bps);
}

Workstation* PegasusSystem::AddWorkstation(const std::string& name) {
  workstations_.push_back(std::make_unique<Workstation>(&network_, name,
                                                        config_.workstation_ports,
                                                        config_.device_link_bps));
  Workstation* ws = workstations_.back().get();
  Uplink(ws);
  return ws;
}

StorageNode* PegasusSystem::AddStorageServer(const pfs::PfsConfig& config,
                                             const std::string& name) {
  const int port = next_backbone_port_++;
  storage_nodes_.push_back(
      std::make_unique<StorageNode>(&network_, backbone_, port, config, name));
  return storage_nodes_.back().get();
}

UnixNode* PegasusSystem::AddUnixNode(const std::string& name) {
  const int port = next_backbone_port_++;
  unix_nodes_.push_back(std::make_unique<UnixNode>(&network_, backbone_, port, name));
  return unix_nodes_.back().get();
}

ComputeNode* PegasusSystem::AddComputeServer(const std::string& name) {
  const int port = next_backbone_port_++;
  compute_nodes_.push_back(std::make_unique<ComputeNode>(&network_, backbone_, port, name));
  return compute_nodes_.back().get();
}

std::optional<MediaSession> PegasusSystem::ConnectCameraToDisplay(Workstation* src,
                                                                  dev::AtmCamera* camera,
                                                                  Workstation* dst,
                                                                  dev::AtmDisplay* display,
                                                                  int x, int y,
                                                                  atm::QosSpec qos) {
  atm::Endpoint* cam_ep = src->device_endpoint(camera);
  atm::Endpoint* disp_ep = dst->device_endpoint(display);
  if (cam_ep == nullptr || disp_ep == nullptr) {
    return std::nullopt;
  }
  auto data = network_.OpenVc(cam_ep, disp_ep, qos);
  if (!data.has_value()) {
    return std::nullopt;
  }
  // Control stream: sink host -> source host (start/stop, mode select, sync).
  auto control = network_.OpenDuplex(dst->host(), src->host());
  if (!control.has_value()) {
    network_.CloseVc(data->id);
    return std::nullopt;
  }
  // The window manager grants the camera's VC a window on the screen.
  dev::WindowManager wm(display);
  wm.CreateWindow(data->destination_vci, x, y, camera->config().width,
                  camera->config().height);

  MediaSession session;
  session.data_vc = data->id;
  session.control_vc = control->first.id;
  session.source_data_vci = data->source_vci;
  session.sink_data_vci = data->destination_vci;
  session.control_send_vci = control->first.source_vci;
  session.control_receive_vci = control->second.destination_vci;
  return session;
}

std::optional<MediaSession> PegasusSystem::ConnectAudio(Workstation* src,
                                                        dev::AudioCapture* capture,
                                                        Workstation* dst,
                                                        dev::AudioPlayback* playback,
                                                        atm::QosSpec qos) {
  atm::Endpoint* in_ep = src->device_endpoint(capture);
  atm::Endpoint* out_ep = dst->device_endpoint(playback);
  if (in_ep == nullptr || out_ep == nullptr) {
    return std::nullopt;
  }
  auto data = network_.OpenVc(in_ep, out_ep, qos);
  if (!data.has_value()) {
    return std::nullopt;
  }
  auto control = network_.OpenDuplex(dst->host(), src->host());
  if (!control.has_value()) {
    network_.CloseVc(data->id);
    return std::nullopt;
  }
  MediaSession session;
  session.data_vc = data->id;
  session.control_vc = control->first.id;
  session.source_data_vci = data->source_vci;
  session.sink_data_vci = data->destination_vci;
  session.control_send_vci = control->first.source_vci;
  session.control_receive_vci = control->second.destination_vci;
  return session;
}

std::optional<MediaSession> PegasusSystem::ConnectDeviceToStorage(Workstation* src,
                                                                  atm::Endpoint* device_ep,
                                                                  StorageNode* storage,
                                                                  atm::QosSpec qos) {
  auto data = network_.OpenVc(device_ep, storage->endpoint(), qos);
  if (!data.has_value()) {
    return std::nullopt;
  }
  // Control stream from the managing host to the storage server, alongside
  // the data (the file server is "also a multimedia device", §2.2).
  auto control = network_.OpenVc(src->host(), storage->endpoint());
  if (!control.has_value()) {
    network_.CloseVc(data->id);
    return std::nullopt;
  }
  MediaSession session;
  session.data_vc = data->id;
  session.control_vc = control->id;
  session.source_data_vci = data->source_vci;
  session.sink_data_vci = data->destination_vci;
  session.control_send_vci = control->source_vci;
  session.control_receive_vci = control->destination_vci;
  return session;
}

std::optional<MediaSession> PegasusSystem::ConnectStorageToDisplay(StorageNode* storage,
                                                                   Workstation* dst,
                                                                   dev::AtmDisplay* display,
                                                                   int x, int y, int w, int h,
                                                                   atm::QosSpec qos) {
  atm::Endpoint* disp_ep = dst->device_endpoint(display);
  if (disp_ep == nullptr) {
    return std::nullopt;
  }
  auto data = network_.OpenVc(storage->endpoint(), disp_ep, qos);
  if (!data.has_value()) {
    return std::nullopt;
  }
  dev::WindowManager wm(display);
  wm.CreateWindow(data->destination_vci, x, y, w, h);
  MediaSession session;
  session.data_vc = data->id;
  session.source_data_vci = data->source_vci;
  session.sink_data_vci = data->destination_vci;
  return session;
}

}  // namespace pegasus::core
