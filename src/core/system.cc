#include "src/core/system.h"

namespace pegasus::core {

PegasusSystem::PegasusSystem(sim::Simulator* sim) : PegasusSystem(sim, Config()) {}

PegasusSystem::PegasusSystem(sim::Simulator* sim, Config config)
    : sim_(sim), config_(config), network_(sim) {
  backbone_ = network_.AddSwitch("backbone", config_.backbone_ports);
}

void PegasusSystem::Uplink(Workstation* ws) {
  const int local_port = ws->ClaimPort();
  const int backbone_port = next_backbone_port_++;
  network_.ConnectSwitches(ws->local_switch(), local_port, backbone_, backbone_port,
                           config_.backbone_link_bps);
}

Workstation* PegasusSystem::AddWorkstation(const std::string& name) {
  workstations_.push_back(std::make_unique<Workstation>(&network_, name,
                                                        config_.workstation_ports,
                                                        config_.device_link_bps));
  Workstation* ws = workstations_.back().get();
  Uplink(ws);
  return ws;
}

Workstation* PegasusSystem::AddWorkstation(const std::string& name, atm::Switch* attach,
                                           int attach_port, int64_t uplink_bps) {
  workstations_.push_back(std::make_unique<Workstation>(&network_, name,
                                                        config_.workstation_ports,
                                                        config_.device_link_bps));
  Workstation* ws = workstations_.back().get();
  network_.ConnectSwitches(ws->local_switch(), ws->ClaimPort(), attach, attach_port, uplink_bps);
  return ws;
}

StorageNode* PegasusSystem::AddStorageServer(const pfs::PfsConfig& config,
                                             const std::string& name) {
  const int port = next_backbone_port_++;
  storage_nodes_.push_back(
      std::make_unique<StorageNode>(&network_, backbone_, port, config, name));
  StorageNode* node = storage_nodes_.back().get();
  if (qos_monitor_ != nullptr) {
    qos_monitor_->AddFileServer(node->server());
  }
  return node;
}

StorageNode* PegasusSystem::AddStorageServer(const pfs::PfsConfig& config,
                                             const std::string& name, atm::Switch* attach,
                                             int attach_port, int64_t link_bps) {
  storage_nodes_.push_back(
      std::make_unique<StorageNode>(&network_, attach, attach_port, config, name, link_bps));
  StorageNode* node = storage_nodes_.back().get();
  if (qos_monitor_ != nullptr) {
    qos_monitor_->AddFileServer(node->server());
  }
  return node;
}

QosMonitor* PegasusSystem::EnableQosMonitor(QosMonitor::Config config) {
  if (qos_monitor_ == nullptr) {
    qos_monitor_ = std::make_unique<QosMonitor>(sim_, &network_, config);
    for (const auto& node : storage_nodes_) {
      qos_monitor_->AddFileServer(node->server());
    }
  }
  qos_monitor_->Start();
  return qos_monitor_.get();
}

UnixNode* PegasusSystem::AddUnixNode(const std::string& name) {
  const int port = next_backbone_port_++;
  unix_nodes_.push_back(std::make_unique<UnixNode>(&network_, backbone_, port, name));
  return unix_nodes_.back().get();
}

ComputeNode* PegasusSystem::AddComputeServer(const std::string& name) {
  const int port = next_backbone_port_++;
  compute_nodes_.push_back(std::make_unique<ComputeNode>(&network_, backbone_, port, name));
  return compute_nodes_.back().get();
}

ComputeNode* PegasusSystem::AddComputeServer(const std::string& name, Workstation* ws) {
  const int port = ws->ClaimPort();
  compute_nodes_.push_back(
      std::make_unique<ComputeNode>(&network_, ws->local_switch(), port, name));
  return compute_nodes_.back().get();
}

StreamBuilder PegasusSystem::BuildStream(const std::string& name) {
  std::string stream_name = name;
  if (stream_name.empty()) {
    stream_name = "stream-" + std::to_string(next_stream_id_);
  }
  ++next_stream_id_;
  return StreamBuilder(this, std::move(stream_name));
}

StreamSession* PegasusSystem::AdoptSession(std::unique_ptr<StreamSession> session) {
  streams_.push_back(std::move(session));
  return streams_.back().get();
}

}  // namespace pegasus::core
