#include "src/core/qos_monitor.h"

#include <algorithm>
#include <cmath>

namespace pegasus::core {

QosMonitor::QosMonitor(sim::Simulator* sim, atm::Network* network, Config config)
    : sim_(sim),
      network_(network),
      config_(config),
      task_(sim, config.period, [this]() { Tick(); }) {}

QosMonitor::QosMonitor(sim::Simulator* sim, atm::Network* network)
    : QosMonitor(sim, network, Config()) {}

void QosMonitor::AddFileServer(pfs::PegasusFileServer* server) {
  if (std::find(servers_.begin(), servers_.end(), server) != servers_.end()) {
    return;
  }
  // The recorder excludes sub-tolerance jitter from windowed miss counts.
  server->stream_quality().set_miss_tolerance(config_.lateness_tolerance);
  servers_.push_back(server);
}

void QosMonitor::Start() {
  if (!task_.running()) {
    // A restart must not score the whole stopped stretch as one interval:
    // drops and lateness accumulated while nobody watched are history, not
    // current pressure.
    Reprime();
  }
  task_.Start();
}

void QosMonitor::Stop() { task_.Stop(); }

void QosMonitor::Reprime() {
  for (LinkState& state : link_states_) {
    state.primed = false;
  }
  for (auto& [server, state] : disk_states_) {
    (void)server;
    state.primed = false;
  }
}

double QosMonitor::link_score(const atm::Link* link) const {
  const int id = link->id();
  if (id < 0 || static_cast<size_t>(id) >= link_states_.size()) {
    return 0.0;
  }
  return link_states_[static_cast<size_t>(id)].score;
}

double QosMonitor::link_severity(const atm::Link* link) const {
  const int id = link->id();
  if (id < 0 || static_cast<size_t>(id) >= link_states_.size()) {
    return 0.0;
  }
  return link_states_[static_cast<size_t>(id)].signalled;
}

double QosMonitor::disk_fraction(const pfs::PegasusFileServer* server) const {
  auto it = disk_states_.find(server);
  return it == disk_states_.end() ? 1.0 : it->second.signalled_fraction;
}

double QosMonitor::LinkRawScore(const atm::Link::StatsSnapshot& prev,
                                const atm::Link::StatsSnapshot& cur) const {
  // Drops destroy deliverable capacity outright: the weighted fraction of
  // this interval's offered cells that the link tail-dropped is severity in
  // the SignalCongestion sense ("the fraction of deliverable capacity that
  // is gone").
  const double sent = static_cast<double>(cur.cells_sent - prev.cells_sent);
  const double drops_high =
      static_cast<double>(cur.cells_dropped_high - prev.cells_dropped_high);
  const double drops_low =
      static_cast<double>(cur.cells_dropped_low - prev.cells_dropped_low);
  const double weighted_drops =
      drops_high * config_.high_drop_weight + drops_low * config_.low_drop_weight;
  double drop_score = 0.0;
  if (weighted_drops > 0.0) {
    drop_score = weighted_drops / (sent + weighted_drops);
  }
  // A standing transmit queue is the early warning: cells are delayed but
  // still delivered, so its contribution ramps from occupancy_floor and is
  // capped below what real loss can reach. It only counts when the
  // interval utilisation confirms a saturated transmitter.
  double occupancy_score = 0.0;
  const double interval_util =
      config_.period > 0
          ? static_cast<double>(cur.busy_time - prev.busy_time) /
                static_cast<double>(config_.period)
          : 0.0;
  if (cur.queue_limit > 0 && interval_util >= config_.utilization_floor) {
    const double occ =
        static_cast<double>(cur.queued_cells) / static_cast<double>(cur.queue_limit);
    if (occ > config_.occupancy_floor && config_.occupancy_floor < 1.0) {
      occupancy_score = config_.occupancy_cap * (occ - config_.occupancy_floor) /
                        (1.0 - config_.occupancy_floor);
    }
  }
  return std::clamp(std::max(drop_score, occupancy_score), 0.0, 1.0);
}

void QosMonitor::Tick() {
  // --- links: snapshot, diff, smooth, signal with hysteresis ---
  const auto& links = network_->links();
  if (link_states_.size() < links.size()) {
    link_states_.resize(links.size());
  }
  for (const auto& link : links) {
    atm::Link* l = link.get();
    LinkState& state = link_states_[static_cast<size_t>(l->id())];
    // Quiescent fast path: a primed link with no smoothed score, no standing
    // signal, untouched counters and an empty queue cannot change any state
    // this tick (raw score is 0, the EWMA stays 0, and below_off_ticks /
    // ticks_since_change are only read while signalling and reset when a
    // signal raises). At metro scale almost every link is idle almost every
    // tick, so the monitor's cost tracks links with reservations or recent
    // traffic instead of the whole fabric.
    if (state.primed && state.score == 0.0 && state.signalled == 0.0 &&
        l->cells_sent() == state.prev.cells_sent &&
        l->cells_dropped_high() == state.prev.cells_dropped_high &&
        l->cells_dropped_low() == state.prev.cells_dropped_low &&
        l->busy_time() == state.prev.busy_time && l->queued_cells() == 0) {
      continue;
    }
    const atm::Link::StatsSnapshot cur = l->Stats();
    if (!state.primed) {
      state.prev = cur;
      state.primed = true;
      continue;
    }
    const double raw = LinkRawScore(state.prev, cur);
    state.prev = cur;
    state.score += config_.smoothing * (raw - state.score);
    ++state.ticks_since_change;
    state.below_off_ticks =
        state.score <= config_.off_threshold ? state.below_off_ticks + 1 : 0;

    if (state.signalled == 0.0) {
      if (state.score >= config_.on_threshold) {
        const double severity = std::min(state.score, config_.max_severity);
        state.signalled = severity;
        state.ticks_since_change = 0;
        ++congestion_signals_;
        network_->SignalCongestion(l, severity);
      }
    } else if (state.below_off_ticks >= config_.min_hold_ticks) {
      // The queue stayed drained for the whole dwell: announce the
      // all-clear so adapting sessions restore — the recovery half of the
      // loop. (A single quiet tick of an oscillating load is not a drain.)
      state.signalled = 0.0;
      state.ticks_since_change = 0;
      ++congestion_recoveries_;
      network_->SignalCongestion(l, 0.0);
    } else if (std::abs(state.score - state.signalled) >= config_.severity_step &&
               state.ticks_since_change >= config_.min_hold_ticks) {
      // Escalate or relax only on a real, settled move; oscillations of
      // the smoothed score around the announced severity stay silent. A
      // relax never announces below on_threshold: sub-band severities are
      // the dwell-clear's business (announcing them would strand the
      // session a hair under nominal once the clear lands), but a score
      // that settles INSIDE the band must still be able to walk a stale
      // deep cut back down to the band's edge.
      const double severity =
          std::clamp(state.score, config_.on_threshold, config_.max_severity);
      state.signalled = severity;
      state.ticks_since_change = 0;
      ++congestion_signals_;
      network_->SignalCongestion(l, severity);
    }
  }

  // --- file servers: windowed lateness -> budget pressure ---
  for (pfs::PegasusFileServer* server : servers_) {
    DiskState& state = disk_states_[server];
    const pfs::StreamQualityRecorder::Window window =
        server->stream_quality().TakeWindow();
    if (!state.primed) {
      // The first drain carries everything recorded before monitoring
      // began; stale history is not current pressure.
      state.primed = true;
      continue;
    }
    // Raw score: the fraction of this window's chunks that missed their
    // deadline by more than the jitter tolerance (the recorder's
    // miss_tolerance, set on registration). An idle window (no chunks)
    // scores zero, so pressure decays once play-out stops too.
    double raw = 0.0;
    if (window.chunks > 0) {
      raw = static_cast<double>(window.deadline_misses) /
            static_cast<double>(window.chunks);
    }
    state.score += config_.smoothing * (raw - state.score);
    ++state.ticks_since_change;
    state.below_off_ticks =
        state.score <= config_.disk_off_threshold ? state.below_off_ticks + 1 : 0;

    const bool signalling = state.signalled_fraction < 1.0;
    if (!signalling) {
      if (state.score >= config_.disk_on_threshold) {
        const double fraction =
            std::clamp(1.0 - state.score, config_.min_disk_fraction, 1.0);
        state.signalled_fraction = fraction;
        state.ticks_since_change = 0;
        ++pressure_signals_;
        server->SignalBudgetPressure(fraction);
      }
    } else if (state.below_off_ticks >= config_.min_hold_ticks) {
      state.signalled_fraction = 1.0;
      state.ticks_since_change = 0;
      ++pressure_recoveries_;
      server->SignalBudgetPressure(1.0);
    } else {
      // As for links: a relax stops at the band's edge (1 - on_threshold);
      // going all the way to 1.0 is the dwell-clear's announcement.
      const double fraction = std::clamp(1.0 - state.score, config_.min_disk_fraction,
                                         1.0 - config_.disk_on_threshold);
      if (std::abs(fraction - state.signalled_fraction) >= config_.disk_fraction_step &&
          state.ticks_since_change >= config_.min_hold_ticks) {
        state.signalled_fraction = fraction;
        state.ticks_since_change = 0;
        ++pressure_signals_;
        server->SignalBudgetPressure(fraction);
      }
    }
  }
}

}  // namespace pegasus::core
