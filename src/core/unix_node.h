// The Unix box of the Pegasus architecture (§2.3).
//
// "One or more nodes in Pegasus run Unix. ... We expect many multimedia
// applications to be split over Unix and Nemesis; the Unix part will contain
// the control functionality, whereas the Nemesis part will contain the
// necessary real-time functionality." A UnixNode hosts the non-real-time
// half: an RPC server exporting control objects and a name space other nodes
// mount — no media data ever flows through it.
#ifndef PEGASUS_SRC_CORE_UNIX_NODE_H_
#define PEGASUS_SRC_CORE_UNIX_NODE_H_

#include <memory>
#include <string>

#include "src/atm/network.h"
#include "src/atm/transport.h"
#include "src/naming/name_space.h"
#include "src/naming/rpc.h"

namespace pegasus::core {

class UnixNode {
 public:
  UnixNode(atm::Network* network, atm::Switch* sw, int port, const std::string& name);

  const std::string& name() const { return name_; }
  atm::Endpoint* endpoint() const { return endpoint_; }
  atm::MessageTransport* transport() { return &transport_; }
  naming::RpcServer* rpc_server() { return &rpc_server_; }
  naming::NameSpace* name_space() { return &name_space_; }

  // Exports `object` under `path` in both the local name space and the RPC
  // server, so local and remote resolvers find the same thing.
  void Export(const std::string& path, naming::Invocable* object);

  // Starts serving RPC on a VC pair (request in, replies out).
  void ServeRpc(atm::Vci request_vci, atm::Vci reply_vci);

 private:
  std::string name_;
  atm::Endpoint* endpoint_;
  atm::MessageTransport transport_;
  naming::RpcServer rpc_server_;
  naming::NameSpace name_space_;
  sim::Simulator* sim_;
};

}  // namespace pegasus::core

#endif  // PEGASUS_SRC_CORE_UNIX_NODE_H_
