// The Pegasus multimedia workstation (§2, Figure 1).
//
// A conventional host plus a *workstation-controlled* ATM switch; cameras,
// displays and audio nodes attach directly to switch ports. The host's CPU
// manages connections and devices but media data need not pass through it —
// the Desk-Area-Network idea. For the architectural comparison (E03) the
// HostRelay below models the conventional alternative, where every media
// cell crosses the workstation bus and is forwarded by host software.
#ifndef PEGASUS_SRC_CORE_WORKSTATION_H_
#define PEGASUS_SRC_CORE_WORKSTATION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/atm/network.h"
#include "src/atm/transport.h"
#include "src/devices/audio.h"
#include "src/devices/camera.h"
#include "src/devices/display.h"
#include "src/sim/event_queue.h"

namespace pegasus::nemesis {
class Kernel;
}

namespace pegasus::core {

// Forwards cells arriving on one VCI out on another, charging per-cell CPU
// time — the software path media takes in a bus-based workstation. The relay
// serialises: cells queue while the "CPU" is busy.
class HostRelay {
 public:
  HostRelay(sim::Simulator* sim, atm::Endpoint* host, sim::DurationNs per_cell_cost);

  // Relay cells arriving on `in_vci` out with `out_vci`.
  void AddRoute(atm::Vci in_vci, atm::Vci out_vci);

  int64_t cells_relayed() const { return cells_relayed_; }
  sim::DurationNs cpu_time_spent() const { return cpu_time_; }

 private:
  void OnCell(const atm::Cell& cell);

  sim::Simulator* sim_;
  atm::Endpoint* host_;
  sim::DurationNs per_cell_cost_;
  std::map<atm::Vci, atm::Vci> routes_;
  sim::TimeNs cpu_free_at_ = 0;
  int64_t cells_relayed_ = 0;
  sim::DurationNs cpu_time_ = 0;
};

class Workstation {
 public:
  // Creates the local switch with `ports` ports and the host endpoint on
  // port 0. `device_link_bps` is the speed of device-to-switch links.
  Workstation(atm::Network* network, const std::string& name, int ports,
              int64_t device_link_bps = 155'000'000);

  const std::string& name() const { return name_; }
  atm::Switch* local_switch() const { return switch_; }
  atm::Endpoint* host() const { return host_; }
  atm::MessageTransport* host_transport() const { return host_transport_.get(); }

  // The Nemesis kernel modelling this workstation's host CPU, when one is
  // attached (not owned). Stream admission checks per-stream CPU contracts
  // against it; without a kernel, CPU demands are not admissible here.
  void AttachKernel(nemesis::Kernel* kernel) { kernel_ = kernel; }
  nemesis::Kernel* kernel() const { return kernel_; }

  // Reserves the next free switch port (for backbone uplinks).
  int ClaimPort();

  // --- device attachment (each device gets its own switch port) ---
  dev::AtmCamera* AddCamera(const dev::AtmCamera::Config& config);
  dev::AtmDisplay* AddDisplay(int width, int height);
  dev::AudioCapture* AddAudioCapture(int sample_rate = 44'100);
  dev::AudioPlayback* AddAudioPlayback(int sample_rate = 44'100,
                                       sim::DurationNs buffer_depth = sim::Milliseconds(10));
  // The endpoint a device was attached through (same order as creation).
  atm::Endpoint* device_endpoint(const void* device) const;

  // Bus-architecture baseline support.
  HostRelay* EnableHostRelay(sim::DurationNs per_cell_cost = sim::Microseconds(5));
  HostRelay* host_relay() const { return relay_.get(); }

 private:
  atm::Endpoint* NewDevicePort(const std::string& suffix);

  atm::Network* network_;
  std::string name_;
  atm::Switch* switch_;
  atm::Endpoint* host_;
  std::unique_ptr<atm::MessageTransport> host_transport_;
  nemesis::Kernel* kernel_ = nullptr;
  int64_t device_link_bps_;
  int next_port_ = 1;
  std::unique_ptr<HostRelay> relay_;

  std::vector<std::unique_ptr<dev::AtmCamera>> cameras_;
  std::vector<std::unique_ptr<dev::AtmDisplay>> displays_;
  std::vector<std::unique_ptr<dev::AudioCapture>> captures_;
  std::vector<std::unique_ptr<dev::AudioPlayback>> playbacks_;
  std::map<const void*, atm::Endpoint*> device_endpoints_;
};

}  // namespace pegasus::core

#endif  // PEGASUS_SRC_CORE_WORKSTATION_H_
