// Full-system assembly (§2.3, Figure 4).
//
// "An overview of the Pegasus architecture ... a Pegasus multimedia
// workstation, multimedia compute server, storage server and Unix server,
// all interconnected by an ATM network." PegasusSystem wires that picture:
// a backbone switch, workstations with their own local switches, a storage
// node, Unix nodes hosting the control halves of applications. Media paths
// are set up through BuildStream(), the admission-controlled cross-layer
// session API of src/core/stream.h.
#ifndef PEGASUS_SRC_CORE_SYSTEM_H_
#define PEGASUS_SRC_CORE_SYSTEM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/atm/network.h"
#include "src/core/compute_node.h"
#include "src/core/qos_monitor.h"
#include "src/core/storage_node.h"
#include "src/core/stream.h"
#include "src/core/unix_node.h"
#include "src/core/workstation.h"
#include "src/pfs/server.h"

namespace pegasus::core {

class PegasusSystem {
 public:
  struct Config {
    int backbone_ports = 16;
    int64_t backbone_link_bps = 155'000'000;
    int workstation_ports = 8;
    int64_t device_link_bps = 155'000'000;
  };

  explicit PegasusSystem(sim::Simulator* sim);
  PegasusSystem(sim::Simulator* sim, Config config);

  sim::Simulator* simulator() const { return sim_; }
  atm::Network& network() { return network_; }
  atm::Switch* backbone() const { return backbone_; }

  // --- component factories ---
  Workstation* AddWorkstation(const std::string& name);
  // Attach-anywhere variant for generated fabrics: the workstation's local
  // switch uplinks to `attach` port `attach_port` at `uplink_bps` instead of
  // the backbone. The metro-scale topology generator hangs hosts off edge
  // switches this way.
  Workstation* AddWorkstation(const std::string& name, atm::Switch* attach, int attach_port,
                              int64_t uplink_bps);
  StorageNode* AddStorageServer(const pfs::PfsConfig& config,
                                const std::string& name = "storage");
  // Attach-anywhere variant: the storage endpoint hangs off `attach` port
  // `attach_port` at `link_bps` instead of the backbone.
  StorageNode* AddStorageServer(const pfs::PfsConfig& config, const std::string& name,
                                atm::Switch* attach, int attach_port, int64_t link_bps);
  UnixNode* AddUnixNode(const std::string& name = "unix");
  ComputeNode* AddComputeServer(const std::string& name = "compute");
  // A compute server attached to `ws`'s local switch rather than the
  // backbone — an accelerator sitting next to the desk. Pipelines detouring
  // between backbone and local compute nodes revisit the workstation's
  // uplink, so two legs of one contract share a directed link: the case the
  // joint per-link admission accounting exists for.
  ComputeNode* AddComputeServer(const std::string& name, Workstation* ws);

  // --- session management (the device manager's job, §2.2) ---
  // Starts a fluent, admission-controlled stream setup. The returned builder
  // checks network bandwidth on every hop, CPU headroom at each end and PFS
  // disk rate together before binding anything.
  StreamBuilder BuildStream(const std::string& name = "");
  // Takes ownership of a session built by a StreamBuilder. Sessions live
  // until the system dies, even after Close() (pending simulator events may
  // still reference their handler domains).
  StreamSession* AdoptSession(std::unique_ptr<StreamSession> session);
  const std::vector<std::unique_ptr<StreamSession>>& streams() const { return streams_; }

  // --- closed-loop monitoring (opt-in) ---
  // Starts a QosMonitor over every link of the network and every storage
  // server (present and future): congestion and disk budget-pressure
  // signals are thereafter derived from observed queues, drops and play-out
  // lateness instead of explicit SignalCongestion / SignalBudgetPressure
  // calls. Idempotent; returns the (already-)running monitor.
  QosMonitor* EnableQosMonitor(QosMonitor::Config config = QosMonitor::Config());
  // The running monitor, or nullptr when not enabled.
  QosMonitor* qos_monitor() const { return qos_monitor_.get(); }

  const std::vector<std::unique_ptr<Workstation>>& workstations() const {
    return workstations_;
  }

 private:
  // Attaches a workstation's local switch to the backbone.
  void Uplink(Workstation* ws);

  sim::Simulator* sim_;
  Config config_;
  atm::Network network_;
  atm::Switch* backbone_;
  int next_backbone_port_ = 0;
  std::vector<std::unique_ptr<Workstation>> workstations_;
  std::vector<std::unique_ptr<StorageNode>> storage_nodes_;
  std::vector<std::unique_ptr<UnixNode>> unix_nodes_;
  std::vector<std::unique_ptr<ComputeNode>> compute_nodes_;
  std::vector<std::unique_ptr<StreamSession>> streams_;
  std::unique_ptr<QosMonitor> qos_monitor_;
  int next_stream_id_ = 1;
};

}  // namespace pegasus::core

#endif  // PEGASUS_SRC_CORE_SYSTEM_H_
