// Full-system assembly (§2.3, Figure 4).
//
// "An overview of the Pegasus architecture ... a Pegasus multimedia
// workstation, multimedia compute server, storage server and Unix server,
// all interconnected by an ATM network." PegasusSystem wires that picture:
// a backbone switch, workstations with their own local switches, a storage
// node, Unix nodes hosting the control halves of applications, plus the
// session helpers that set up the paper's canonical media paths.
#ifndef PEGASUS_SRC_CORE_SYSTEM_H_
#define PEGASUS_SRC_CORE_SYSTEM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/atm/network.h"
#include "src/core/compute_node.h"
#include "src/core/storage_node.h"
#include "src/core/unix_node.h"
#include "src/core/workstation.h"
#include "src/pfs/server.h"

namespace pegasus::core {

// A established media session: the data VC from a source device to a sink
// device plus the control VC back to the source's managing host.
struct MediaSession {
  atm::VcId data_vc = -1;
  atm::VcId control_vc = -1;
  atm::Vci source_data_vci = atm::kVciUnassigned;
  atm::Vci sink_data_vci = atm::kVciUnassigned;
  atm::Vci control_send_vci = atm::kVciUnassigned;
  atm::Vci control_receive_vci = atm::kVciUnassigned;
};

class PegasusSystem {
 public:
  struct Config {
    int backbone_ports = 16;
    int64_t backbone_link_bps = 155'000'000;
    int workstation_ports = 8;
    int64_t device_link_bps = 155'000'000;
  };

  explicit PegasusSystem(sim::Simulator* sim);
  PegasusSystem(sim::Simulator* sim, Config config);

  sim::Simulator* simulator() const { return sim_; }
  atm::Network& network() { return network_; }
  atm::Switch* backbone() const { return backbone_; }

  // --- component factories ---
  Workstation* AddWorkstation(const std::string& name);
  StorageNode* AddStorageServer(const pfs::PfsConfig& config,
                                const std::string& name = "storage");
  UnixNode* AddUnixNode(const std::string& name = "unix");
  ComputeNode* AddComputeServer(const std::string& name = "compute");

  // --- session management (the device manager's job, §2.2) ---
  // Camera -> display: data VC direct through the switches (no CPU on the
  // path), control VC from the sink's host back to the source's host, and a
  // window at (x, y) sized to the camera image.
  std::optional<MediaSession> ConnectCameraToDisplay(Workstation* src, dev::AtmCamera* camera,
                                                     Workstation* dst, dev::AtmDisplay* display,
                                                     int x, int y,
                                                     atm::QosSpec qos = atm::QosSpec{});
  // Audio capture -> playback.
  std::optional<MediaSession> ConnectAudio(Workstation* src, dev::AudioCapture* capture,
                                           Workstation* dst, dev::AudioPlayback* playback,
                                           atm::QosSpec qos = atm::QosSpec{});
  // Device -> storage recording session (data + control VC to the server).
  std::optional<MediaSession> ConnectDeviceToStorage(Workstation* src, atm::Endpoint* device_ep,
                                                     StorageNode* storage,
                                                     atm::QosSpec qos = atm::QosSpec{});
  // Storage -> display playout session.
  std::optional<MediaSession> ConnectStorageToDisplay(StorageNode* storage, Workstation* dst,
                                                      dev::AtmDisplay* display, int x, int y,
                                                      int w, int h,
                                                      atm::QosSpec qos = atm::QosSpec{});

  const std::vector<std::unique_ptr<Workstation>>& workstations() const {
    return workstations_;
  }

 private:
  // Attaches a workstation's local switch to the backbone.
  void Uplink(Workstation* ws);

  sim::Simulator* sim_;
  Config config_;
  atm::Network network_;
  atm::Switch* backbone_;
  int next_backbone_port_ = 0;
  std::vector<std::unique_ptr<Workstation>> workstations_;
  std::vector<std::unique_ptr<StorageNode>> storage_nodes_;
  std::vector<std::unique_ptr<UnixNode>> unix_nodes_;
  std::vector<std::unique_ptr<ComputeNode>> compute_nodes_;
};

}  // namespace pegasus::core

#endif  // PEGASUS_SRC_CORE_SYSTEM_H_
