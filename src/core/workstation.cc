#include "src/core/workstation.h"

#include <algorithm>

namespace pegasus::core {

HostRelay::HostRelay(sim::Simulator* sim, atm::Endpoint* host, sim::DurationNs per_cell_cost)
    : sim_(sim), host_(host), per_cell_cost_(per_cell_cost) {
  host_->set_cell_handler([this](const atm::Cell& cell) { OnCell(cell); });
}

void HostRelay::AddRoute(atm::Vci in_vci, atm::Vci out_vci) { routes_[in_vci] = out_vci; }

void HostRelay::OnCell(const atm::Cell& cell) {
  auto it = routes_.find(cell.vci);
  if (it == routes_.end()) {
    return;
  }
  // The host CPU copies the cell across the bus and back: one serialised
  // unit of per-cell work.
  const sim::TimeNs start = std::max(sim_->now(), cpu_free_at_);
  const sim::TimeNs done = start + per_cell_cost_;
  cpu_free_at_ = done;
  cpu_time_ += per_cell_cost_;
  ++cells_relayed_;
  atm::Cell out = cell;
  out.vci = it->second;
  sim_->ScheduleAt(done, [this, out]() { host_->SendCell(out); });
}

Workstation::Workstation(atm::Network* network, const std::string& name, int ports,
                         int64_t device_link_bps)
    : network_(network), name_(name), device_link_bps_(device_link_bps) {
  switch_ = network_->AddSwitch(name + "/switch", ports);
  host_ = network_->AddEndpoint(name + "/host", switch_, 0, device_link_bps);
  host_transport_ = std::make_unique<atm::MessageTransport>(host_);
}

int Workstation::ClaimPort() { return next_port_++; }

atm::Endpoint* Workstation::NewDevicePort(const std::string& suffix) {
  const int port = ClaimPort();
  return network_->AddEndpoint(name_ + "/" + suffix, switch_, port, device_link_bps_);
}

dev::AtmCamera* Workstation::AddCamera(const dev::AtmCamera::Config& config) {
  atm::Endpoint* ep = NewDevicePort("camera" + std::to_string(cameras_.size()));
  cameras_.push_back(
      std::make_unique<dev::AtmCamera>(switch_->simulator(), ep, config));
  device_endpoints_[cameras_.back().get()] = ep;
  return cameras_.back().get();
}

dev::AtmDisplay* Workstation::AddDisplay(int width, int height) {
  atm::Endpoint* ep = NewDevicePort("display" + std::to_string(displays_.size()));
  displays_.push_back(
      std::make_unique<dev::AtmDisplay>(switch_->simulator(), ep, width, height));
  device_endpoints_[displays_.back().get()] = ep;
  return displays_.back().get();
}

dev::AudioCapture* Workstation::AddAudioCapture(int sample_rate) {
  atm::Endpoint* ep = NewDevicePort("audio-in" + std::to_string(captures_.size()));
  captures_.push_back(
      std::make_unique<dev::AudioCapture>(switch_->simulator(), ep, sample_rate));
  device_endpoints_[captures_.back().get()] = ep;
  return captures_.back().get();
}

dev::AudioPlayback* Workstation::AddAudioPlayback(int sample_rate,
                                                  sim::DurationNs buffer_depth) {
  atm::Endpoint* ep = NewDevicePort("audio-out" + std::to_string(playbacks_.size()));
  playbacks_.push_back(std::make_unique<dev::AudioPlayback>(switch_->simulator(), ep,
                                                            sample_rate, buffer_depth));
  device_endpoints_[playbacks_.back().get()] = ep;
  return playbacks_.back().get();
}

atm::Endpoint* Workstation::device_endpoint(const void* device) const {
  auto it = device_endpoints_.find(device);
  return it == device_endpoints_.end() ? nullptr : it->second;
}

HostRelay* Workstation::EnableHostRelay(sim::DurationNs per_cell_cost) {
  if (relay_ == nullptr) {
    // The relay gets its own "bus NIC" endpoint: in a conventional
    // workstation all media crosses this interface and the host CPU.
    atm::Endpoint* bus = NewDevicePort("bus-nic");
    relay_ = std::make_unique<HostRelay>(switch_->simulator(), bus, per_cell_cost);
    device_endpoints_[relay_.get()] = bus;
  }
  return relay_.get();
}

}  // namespace pegasus::core
