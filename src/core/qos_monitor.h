// Closed-loop QoS monitoring (§3.3's feedback loop without an oracle).
//
// The adaptation plane of stream.h reacts to Network::SignalCongestion and
// PegasusFileServer::SignalBudgetPressure — but until now both were explicit
// operator calls. The QosMonitor derives them from what the system actually
// does: a periodic simulated task snapshots every link's transmit-queue
// occupancy, per-priority drop deltas and interval utilisation, and every
// file server's windowed play-out lateness, maps the EWMA-smoothed scores
// through thresholds with hysteresis to a severity in [0, 1], and raises the
// very same signals — including the decay-to-zero recovery signal that lets
// AdaptationPolicy sessions restore when queues drain. The explicit-signal
// API stays available (tests and fault injection use it); the monitor is
// just another caller of it.
#ifndef PEGASUS_SRC_CORE_QOS_MONITOR_H_
#define PEGASUS_SRC_CORE_QOS_MONITOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/atm/link.h"
#include "src/atm/network.h"
#include "src/pfs/server.h"
#include "src/sim/periodic_task.h"
#include "src/sim/time.h"

namespace pegasus::core {

class QosMonitor {
 public:
  struct Config {
    // Sampling cadence of the monitor task.
    sim::DurationNs period = sim::Milliseconds(10);
    // EWMA weight of the newest per-tick score, in (0, 1].
    double smoothing = 0.3;

    // --- link congestion mapping ---
    // Weight of a dropped cell by its loss-priority class: losing reserved
    // (high-priority) cells is worse than shedding best-effort ones.
    double high_drop_weight = 1.0;
    double low_drop_weight = 0.5;
    // Queue occupancy below this fraction of the queue limit contributes
    // nothing; above it, the excess ramps linearly up to occupancy_cap.
    double occupancy_floor = 0.5;
    // Severity ceiling of the occupancy term alone: a standing queue delays
    // cells but, unlike drops, does not yet destroy deliverable capacity.
    double occupancy_cap = 0.3;
    // The occupancy term counts only when the interval utilisation
    // (busy-time delta over the tick) shows a saturated transmitter — a
    // standing queue behind an idle transmitter is a sampling artifact.
    double utilization_floor = 0.9;
    // Smoothed score that raises a congestion signal / clears it. The gap
    // between the two is the hysteresis band that prevents signal churn.
    double on_threshold = 0.12;
    double off_threshold = 0.04;
    // While signalling, re-signal only when the smoothed score has moved at
    // least this far from the last severity announced...
    double severity_step = 0.15;
    // ...and no sooner than this many ticks after the previous change, so
    // an oscillating load cannot flap the announced severity every tick.
    // Recovery needs the same dwell: the all-clear is announced only after
    // the score has stayed below off_threshold this many consecutive ticks
    // (restoring a stream just to re-degrade it next tick is churn too).
    // The dwell must outlast the quiet phase of any oscillation the
    // monitor should ride out.
    int64_t min_hold_ticks = 8;
    // Severity is clamped here so a degraded stream never loses its whole
    // reservation to a transient measurement spike.
    double max_severity = 0.9;

    // --- disk budget-pressure mapping ---
    // Deadline misses later than this tolerance count toward the score
    // (sub-tolerance lateness is jitter, not pressure).
    sim::DurationNs lateness_tolerance = sim::Milliseconds(1);
    // Smoothed miss-ratio thresholds (raise / clear), same hysteresis idea.
    double disk_on_threshold = 0.10;
    double disk_off_threshold = 0.04;
    // Re-signal only when the deliverable fraction moved at least this far
    // (and min_hold_ticks apply here too).
    double disk_fraction_step = 0.15;
    // Floor of the deliverable fraction announced under pressure.
    double min_disk_fraction = 0.1;
  };

  QosMonitor(sim::Simulator* sim, atm::Network* network, Config config);
  QosMonitor(sim::Simulator* sim, atm::Network* network);

  QosMonitor(const QosMonitor&) = delete;
  QosMonitor& operator=(const QosMonitor&) = delete;

  // Adds a file server volume to the watch set (idempotent).
  void AddFileServer(pfs::PegasusFileServer* server);

  void Start();
  void Stop();
  bool running() const { return task_.running(); }
  const Config& config() const { return config_; }

  // --- introspection (tests, benches, dashboards) ---
  int64_t ticks() const { return task_.ticks(); }
  // Congestion signals raised or escalated (severity > 0) / cleared.
  int64_t congestion_signals() const { return congestion_signals_; }
  int64_t congestion_recoveries() const { return congestion_recoveries_; }
  // Budget-pressure signals raised or escalated (fraction < 1) / cleared.
  int64_t pressure_signals() const { return pressure_signals_; }
  int64_t pressure_recoveries() const { return pressure_recoveries_; }
  // The smoothed congestion score of `link`, in [0, 1].
  double link_score(const atm::Link* link) const;
  // Severity currently announced for `link` (0 when not signalling).
  double link_severity(const atm::Link* link) const;
  // Deliverable fraction currently announced for `server` (1 = no pressure).
  double disk_fraction(const pfs::PegasusFileServer* server) const;

 private:
  struct LinkState {
    atm::Link::StatsSnapshot prev;
    bool primed = false;  // first tick only seeds `prev`
    double score = 0.0;
    double signalled = 0.0;  // last announced severity; 0 = not signalling
    int64_t ticks_since_change = 0;
    int64_t below_off_ticks = 0;  // consecutive ticks spent under off_threshold
  };
  struct DiskState {
    bool primed = false;  // first tick only discards the stale window
    double score = 0.0;
    double signalled_fraction = 1.0;  // 1 = not signalling
    int64_t ticks_since_change = 0;
    int64_t below_off_ticks = 0;
  };

  void Tick();
  // Discards whatever accumulated while the monitor was not watching: link
  // snapshot deltas and disk windows re-prime on the next tick.
  void Reprime();
  // One link's per-tick raw congestion score from the snapshot delta.
  double LinkRawScore(const atm::Link::StatsSnapshot& prev,
                      const atm::Link::StatsSnapshot& cur) const;

  sim::Simulator* sim_;
  atm::Network* network_;
  Config config_;
  sim::PeriodicTask task_;
  // Indexed by dense link id (= index in network->links()); grown lazily on
  // tick so links added after construction are picked up.
  std::vector<LinkState> link_states_;
  std::vector<pfs::PegasusFileServer*> servers_;
  std::map<const pfs::PegasusFileServer*, DiskState> disk_states_;
  int64_t congestion_signals_ = 0;
  int64_t congestion_recoveries_ = 0;
  int64_t pressure_signals_ = 0;
  int64_t pressure_recoveries_ = 0;
};

}  // namespace pegasus::core

#endif  // PEGASUS_SRC_CORE_QOS_MONITOR_H_
