#include "src/core/compute_node.h"

#include <algorithm>

namespace pegasus::core {

ComputeNode::ComputeNode(atm::Network* network, atm::Switch* sw, int port,
                         const std::string& name)
    : endpoint_(network->AddEndpoint(name, sw, port, 155'000'000)),
      transport_(endpoint_),
      sim_(sw->simulator()),
      name_(name) {}

dev::TileProcessor* ComputeNode::AddStage(atm::Vci in_vci, atm::Vci out_vci,
                                          dev::TileProcessor::Config config) {
  PruneDetached();
  processors_.push_back(std::make_unique<dev::TileProcessor>(sim_, &transport_, in_vci, out_vci,
                                                             std::move(config)));
  stage_in_vcis_[processors_.back().get()] = in_vci;
  return processors_.back().get();
}

void ComputeNode::PruneDetached() {
  const sim::TimeNs now = sim_->now();
  processors_.erase(
      std::remove_if(processors_.begin(), processors_.end(),
                     [&](const std::unique_ptr<dev::TileProcessor>& p) {
                       return stage_in_vcis_.count(p.get()) == 0 && p->drained_at(now);
                     }),
      processors_.end());
}

void ComputeNode::DetachStage(dev::TileProcessor* stage) {
  auto it = stage_in_vcis_.find(stage);
  if (it == stage_in_vcis_.end()) {
    return;
  }
  transport_.ClearHandler(it->second);
  stage_in_vcis_.erase(it);
}

}  // namespace pegasus::core
