#include "src/core/compute_node.h"

namespace pegasus::core {

ComputeNode::ComputeNode(atm::Network* network, atm::Switch* sw, int port,
                         const std::string& name)
    : endpoint_(network->AddEndpoint(name, sw, port, 155'000'000)),
      transport_(endpoint_),
      sim_(network->simulator()) {}

dev::TileProcessor* ComputeNode::AddStage(atm::Vci in_vci, atm::Vci out_vci,
                                          dev::TileProcessor::Config config) {
  processors_.push_back(std::make_unique<dev::TileProcessor>(sim_, &transport_, in_vci, out_vci,
                                                             std::move(config)));
  return processors_.back().get();
}

}  // namespace pegasus::core
