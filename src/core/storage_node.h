// Network-attached Pegasus File Server (§2.2, §5, Figure 4).
//
// "The Pegasus File Server, which can also be viewed as a multimedia device
// in this context, uses the control stream associated with an incoming data
// stream to generate index information that can later be used to go to
// specific time offsets into a media file or a set of synchronized files."
//
// The node records AAL5 message streams (tile packets, or anything framed)
// into continuous-media files as length-prefixed records, turns control-
// stream kIndexMark messages into pnode index entries, and plays files back
// onto outgoing VCs with the original timing (or faster, for fast-forward).
#ifndef PEGASUS_SRC_CORE_STORAGE_NODE_H_
#define PEGASUS_SRC_CORE_STORAGE_NODE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/atm/network.h"
#include "src/atm/transport.h"
#include "src/devices/control.h"
#include "src/pfs/server.h"
#include "src/sim/event_queue.h"

namespace pegasus::core {

class StorageNode {
 public:
  StorageNode(atm::Network* network, atm::Switch* sw, int port, pfs::PfsConfig config,
              const std::string& name = "storage", int64_t link_bps = 155'000'000);

  pfs::PegasusFileServer* server() { return &server_; }
  atm::Endpoint* endpoint() const { return endpoint_; }
  atm::MessageTransport* transport() { return &transport_; }

  // --- recording ---
  // Creates a continuous file and records every message arriving on
  // `data_vci` into it. Control messages for `stream_id` on `control_vci`
  // drive indexing (kIndexMark / kSyncMark entries map media time to the
  // current byte offset).
  pfs::FileId StartRecording(atm::Vci data_vci, atm::Vci control_vci, uint32_t stream_id);
  // Stops recording and syncs the file; returns bytes recorded.
  int64_t StopRecording(atm::Vci data_vci, std::function<void()> synced);

  // --- catalog seeding ---
  // Creates a continuous file pre-populated with `records` synthetic
  // records of `record_bytes` payload each, timestamped `cadence` apart
  // (the recorded play-out rhythm), with a periodic time index. Scenario
  // generators use this to stock a video-on-demand catalog without
  // replaying a live recording session per title.
  pfs::FileId SeedContinuousFile(int records, int record_bytes, sim::DurationNs cadence);

  // --- playback ---
  // Plays the records of `file` to `out_vci`, re-timing each record from the
  // index-recorded original cadence scaled by `speed` (2.0 = fast forward).
  // Starts at media time `from_ts` (index lookup). Returns false if the file
  // has no records.
  bool StartPlayback(pfs::FileId file, atm::Vci out_vci, double speed = 1.0,
                     sim::TimeNs from_ts = 0);
  void StopPlayback(pfs::FileId file);

  // Paces play-out of `file` to `bps` wire bits per second (0 = unpaced,
  // the recorded cadence). Stream admission binds this to the session's
  // granted network/disk rate, exactly as cameras and audio captures are
  // paced: records never leave faster than the reservation can carry them.
  // Applies to a running playback immediately and persists across
  // StartPlayback calls for the same file.
  void SetPlayoutPaceBps(pfs::FileId file, int64_t bps);
  int64_t PlayoutPaceBps(pfs::FileId file) const;

  int64_t records_recorded() const { return records_recorded_; }
  int64_t records_played() const { return records_played_; }

 private:
  struct RecordingState {
    pfs::FileId file = -1;
    uint32_t stream_id = 0;
    int64_t offset = 0;
    atm::Vci control_vci = atm::kVciUnassigned;
  };
  struct PlaybackState {
    atm::Vci out_vci = atm::kVciUnassigned;
    int64_t offset = 0;
    double speed = 1.0;
    bool running = false;
    sim::TimeNs last_media_ts = -1;
    sim::TimeNs next_send = 0;
    // Guards in-flight async callbacks against stop/restart races: a
    // callback only acts if its generation still matches.
    uint64_t generation = 0;
    // Read-ahead: records are parsed from this window instead of issuing a
    // disk read per record (continuous data is read in large spans, §5).
    std::vector<uint8_t> buffer;
    int64_t buffer_base = 0;
  };

  void OnData(atm::Vci vci, std::vector<uint8_t> message);
  void OnControl(atm::Vci vci, const dev::ControlMessage& message);
  void PlayNext(pfs::FileId file, uint64_t generation);
  // The playback state for (file, generation), or nullptr if superseded.
  PlaybackState* LivePlayback(pfs::FileId file, uint64_t generation);

  sim::Simulator* sim_;
  atm::Endpoint* endpoint_;
  atm::MessageTransport transport_;
  pfs::PegasusFileServer server_;
  std::map<atm::Vci, RecordingState> recordings_;
  std::map<atm::Vci, atm::Vci> control_to_data_;
  std::map<pfs::FileId, PlaybackState> playbacks_;
  std::map<pfs::FileId, int64_t> playout_pace_bps_;
  uint64_t next_playback_generation_ = 1;
  int64_t records_recorded_ = 0;
  int64_t records_played_ = 0;
};

}  // namespace pegasus::core

#endif  // PEGASUS_SRC_CORE_STORAGE_NODE_H_
