// Region-sharded conservative parallel simulation (PDES).
//
// A ShardGroup runs K `Simulator` shards side by side, synchronized the
// classic conservative way: the minimum propagation delay over all
// cross-shard (boundary) links is the LOOKAHEAD — a message emitted by a
// shard at time t can be observed by another shard no earlier than t + L,
// so every shard may safely execute up to min(earliest pending event) + L
// without hearing from its neighbours. Execution proceeds in barrier
// windows; cross-shard traffic crosses through per-link mailboxes that are
// drained — in a deterministic merge order, sorted by (delivery time,
// channel registration order, emission order) — while every thread sits at
// the barrier.
//
// One external `Simulator` (typically the PegasusSystem clock) acts as the
// CONTROL shard: its events — workload arrivals, admission, QoS-monitor
// ticks — are global synchronisation points. All shards are quiesced with
// their clocks set to exactly the control event's timestamp before it runs,
// so control code may read and mutate any shard's state (reservation
// ledgers, switch tables, link counters) exactly as it does under the
// single-threaded engine. That discipline is what makes the parallel run
// reproduce the single-threaded results bit for bit: parallelism changes
// wall clock only, never outcomes.
//
// Threading: each worker owns a fixed subset of shards; shard state is
// touched only by its owner inside a window and only by the coordinating
// thread between windows (both orderings established by the barrier mutex).
// With `threads = 1` the windows run inline on the calling thread — same
// schedule, no std::thread — which is also the profile-friendly mode on a
// single-core host.
#ifndef PEGASUS_SRC_SIM_SHARD_H_
#define PEGASUS_SRC_SIM_SHARD_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace pegasus::sim {

class ShardGroup;

// The outbox of one directed boundary link. The source shard posts
// timestamped handlers while it executes a window; the coordinator moves
// them to the destination shard's inbox at the next barrier. Channels are
// created by ShardGroup::RegisterBoundary and owned by the group.
class BoundaryChannel {
 public:
  // Called from the source shard's event handlers only. `deliver_at` must
  // honour the channel's registered lookahead (emission time + at least the
  // link propagation delay); the conservative window invariant depends on
  // it.
  void Post(TimeNs deliver_at, Simulator::Handler fn) {
    outbox_.push_back(Message{deliver_at, next_order_++, std::move(fn)});
  }

  int source_shard() const { return src_; }
  int destination_shard() const { return dst_; }

 private:
  friend class ShardGroup;
  struct Message {
    TimeNs deliver_at;
    uint64_t order;  // per-channel emission order (monotone across windows)
    Simulator::Handler fn;
  };

  BoundaryChannel(int src, int dst, uint32_t id) : src_(src), dst_(dst), id_(id) {}

  int src_;
  int dst_;
  uint32_t id_;  // registration order; merge tie-breaker across channels
  uint64_t next_order_ = 0;
  std::vector<Message> outbox_;
};

class ShardGroup {
 public:
  struct Options {
    int shards = 1;
    // 0 = auto (one thread per shard, capped at the hardware concurrency;
    // serial when the host has a single core). 1 = run windows inline with
    // no worker threads. n > 1 = n workers, shards distributed round-robin.
    int threads = 0;
  };

  struct Stats {
    uint64_t windows = 0;       // conservative windows executed
    uint64_t sync_points = 0;   // control-event quiesce points
    uint64_t messages = 0;      // boundary messages delivered
  };

  // `control` is the externally owned control simulator (it is NOT run by
  // worker threads; see the class comment). Shard simulators are created
  // and owned by the group.
  ShardGroup(Simulator* control, Options options);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  Simulator* control() const { return control_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }
  int thread_count() const { return threads_ == 0 ? 1 : threads_; }
  Simulator* shard(int i) { return shards_[static_cast<size_t>(i)].get(); }
  // Index of `s` among the shards, or -1 (control / foreign simulator).
  int shard_index(const Simulator* s) const;

  // Declares a directed boundary link from `src`'s shard to `dst`'s shard
  // whose earliest cross-shard effect lags emission by `lookahead` (> 0;
  // for an ATM link, its propagation delay). Lowers the group lookahead.
  // Both simulators must be shards of this group.
  BoundaryChannel* RegisterBoundary(Simulator* src, Simulator* dst, DurationNs lookahead);

  // Runs every shard and the control simulator through time `t`, with
  // RunUntil(t) semantics on each clock (events at exactly `t` run; all
  // clocks end at `t`). Callable repeatedly with increasing times.
  void RunUntil(TimeNs t);

  const Stats& stats() const { return stats_; }
  // Group lookahead: the smallest registered boundary lag, or kTimeNever
  // when no boundary has been registered (windows then span sync points).
  DurationNs lookahead() const { return lookahead_; }

 private:
  // Runs conservative windows until no shard holds an event before `limit`
  // (`inclusive` widens that to "at or before"), then parks every shard
  // clock at `limit`.
  void AdvanceShards(TimeNs limit, bool inclusive);
  // One window: every shard runs to `horizon` (RunUntil when `inclusive`,
  // RunUntilBefore otherwise), in parallel when workers exist.
  void ExecuteWindow(TimeNs horizon, bool inclusive);
  void RunShardsSlice(int worker, TimeNs horizon, bool inclusive);
  // Moves every channel's outbox into its destination inbox (at a barrier).
  void CollectOutboxes();
  // Schedules inbox messages onto their shards in deterministic order.
  void DrainInboxes();
  TimeNs MinNextEventTime();

  Simulator* control_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::unique_ptr<BoundaryChannel>> channels_;
  DurationNs lookahead_ = kTimeNever;
  Stats stats_;

  struct Pending {
    TimeNs deliver_at;
    uint32_t channel;
    uint64_t order;
    Simulator::Handler fn;
  };
  std::vector<std::vector<Pending>> inbox_;  // indexed by destination shard

  // Worker pool (empty in serial mode). Workers wait for an epoch bump,
  // run their shard slice to task_horizon_, and report back; the barrier
  // mutex carries the happens-before edges TSan (and the memory model)
  // need between owner handoffs.
  int threads_ = 0;  // 0 = serial
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;
  TimeNs task_horizon_ = 0;
  bool task_inclusive_ = false;
  int remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace pegasus::sim

#endif  // PEGASUS_SRC_SIM_SHARD_H_
