// Region-sharded conservative parallel simulation (PDES).
//
// A ShardGroup runs K `Simulator` shards side by side, synchronized the
// classic conservative way, with PER-CHANNEL lookahead: every directed
// boundary channel (for an ATM link, one direction of a cross-shard trunk)
// guarantees that a message emitted by its source shard at time t cannot be
// observed by the destination before t + L_channel. At the start of each
// barrier window the group snapshots every shard's earliest pending event
// and gives each shard its own horizon
//
//     horizon(d) = min over inbound channels c of
//                  ( next_event(source(c)) + L_c )
//
// — the source cannot emit anything on c before its own next event runs, so
// nothing can reach d before that bound. A shard whose inbound neighbours
// are idle (no pending events) is unconstrained and runs straight to the
// next sync point, however small some distant pair's lookahead is; a shard
// adjacent only to wide channels never crawls at the group-wide minimum.
// Windows where only one shard has anything to do run inline on the
// coordinating thread with no barrier at all.
//
// Cross-shard traffic crosses through per-channel mailboxes, batched and
// DEFERRED: the trains a channel posts accumulate in a shard-local staging
// batch (records + one byte arena, no per-train allocation) across as many
// windows as the destination's horizon allows, and the batch crosses the
// mailbox as a single two-buffer swap only when the horizon first covers
// one of its records — one hand-off per (channel, catch-up), not one per
// train or even one per window. Windows with zero boundary traffic skip
// the merge pass entirely.
// Received records then wait in a per-destination pending queue and are
// scheduled only once the destination's horizon passes their delivery
// time. That release discipline is what keeps the merge deterministic
// UNDER per-shard horizons: the conservative invariant guarantees every
// record bound for time T has crossed the mailbox before any horizon
// exceeds T, so all records for one (destination, T) are released in the
// same batch, in (delivery time, channel registration order, emission
// order) order — a total order independent of how regions were
// partitioned or which thread ran which window.
//
// One external `Simulator` (typically the PegasusSystem clock) acts as the
// CONTROL shard: its events — workload arrivals, admission, QoS-monitor
// ticks — are global synchronisation points. RunControlBatch quiesces all
// shards with their clocks parked at exactly the control timestamp and then
// runs EVERY control event at that timestamp as one batch (a Poisson
// arrival burst, a co-periodic monitor + metrics tick) under a single
// quiesce, so control code may read and mutate any shard's state exactly as
// it does under the single-threaded engine. That discipline is what makes
// the parallel run reproduce the single-threaded results bit for bit:
// parallelism changes wall clock only, never outcomes.
//
// Threading: each worker owns a fixed subset of shards; shard state is
// touched only by its owner inside a window and only by the coordinating
// thread between windows. The epoch barrier is sense-reversing and built on
// atomics: workers spin briefly on the epoch counter before blocking on a
// condvar, and the release/acquire pair on the epoch (and on the done
// counter coming back) carries the happens-before edges the memory model
// (and TSan) need between owner handoffs. With `threads = 1` the windows
// run inline on the calling thread — same schedule, no std::thread — which
// is also the profile-friendly mode on a single-core host.
#ifndef PEGASUS_SRC_SIM_SHARD_H_
#define PEGASUS_SRC_SIM_SHARD_H_

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace pegasus::sim {

class ShardGroup;

// The outbox of one directed boundary link. The source shard posts
// timestamped work while it executes windows; the postings accumulate in a
// staging batch that crosses the mailbox as a single swap only once the
// destination's horizon needs its earliest record — typically several
// windows' worth of trains per swap. Channels are created by
// ShardGroup::RegisterBoundary and owned by the group.
class BoundaryChannel {
 public:
  // Delivers a span previously posted with PostSpan. `data` points into the
  // batch arena and is valid only for the duration of the call.
  using SpanDeliverFn = void (*)(void* ctx, const void* data, size_t size);

  // Called from the source shard's event handlers only. `deliver_at` must
  // honour the channel's registered lookahead (emission time + at least the
  // link propagation delay); the conservative window invariant depends on
  // it.
  void Post(TimeNs deliver_at, Simulator::Handler fn) {
    assert(deliver_at >= src_sim_->now() + lookahead_);
    Batch& b = Staging();
    staging_min_ = std::min(staging_min_, deliver_at);
    b.posts.push_back(PostRecord{deliver_at, next_order_++, std::move(fn)});
  }

  // Batched variant for POD payloads (the data plane's cell trains): the
  // bytes are copied into the channel's window arena — no per-train
  // allocation, no Handler construction — and `fn(ctx, bytes, size)` runs
  // on the destination shard at `deliver_at`. Same lookahead contract as
  // Post.
  void PostSpan(TimeNs deliver_at, const void* data, size_t size, SpanDeliverFn fn, void* ctx) {
    assert(deliver_at >= src_sim_->now() + lookahead_);
    Batch& b = Staging();
    staging_min_ = std::min(staging_min_, deliver_at);
    const size_t offset =
        (b.arena.size() + alignof(std::max_align_t) - 1) & ~(alignof(std::max_align_t) - 1);
    b.arena.resize(offset + size);
    std::memcpy(b.arena.data() + offset, data, size);
    b.spans.push_back(SpanRecord{deliver_at, next_order_++, fn, ctx,
                                 static_cast<uint32_t>(offset), static_cast<uint32_t>(size)});
  }

  int source_shard() const { return src_; }
  int destination_shard() const { return dst_; }
  DurationNs lookahead() const { return lookahead_; }

 private:
  friend class ShardGroup;
  struct SpanRecord {
    TimeNs deliver_at;
    uint64_t order;  // per-channel emission order (monotone across windows)
    SpanDeliverFn fn;
    void* ctx;
    uint32_t offset;  // into the batch arena
    uint32_t size;
  };
  struct PostRecord {
    TimeNs deliver_at;
    uint64_t order;
    Simulator::Handler fn;
  };
  // One window's postings on one channel: the unit that crosses the
  // mailbox. Span payload bytes live in `arena`; the records index into it.
  // Destination-side, the batch is shared by the per-delivery events and
  // freed (on the owning shard's thread) when the last one has run.
  struct Batch {
    uint32_t channel = 0;
    std::vector<SpanRecord> spans;
    std::vector<PostRecord> posts;
    std::vector<unsigned char> arena;
  };

  BoundaryChannel(ShardGroup* group, Simulator* src_sim, int src, int dst, uint32_t id,
                  DurationNs lookahead)
      : group_(group), src_sim_(src_sim), src_(src), dst_(dst), id_(id), lookahead_(lookahead) {}

  // The batch being filled this window; allocated lazily so quiet channels
  // cost nothing, and registered dirty with the group on first use.
  Batch& Staging();

  ShardGroup* group_;
  Simulator* src_sim_;
  int src_;
  int dst_;
  uint32_t id_;  // registration order; merge tie-breaker across channels
  DurationNs lookahead_;
  uint64_t next_order_ = 0;
  std::unique_ptr<Batch> staging_;
  // Earliest deliver_at in staging_; kTimeNever when staging_ is empty.
  // Written by the owning shard's thread during a window, read by the
  // coordinator between windows to decide when the batch must cross.
  TimeNs staging_min_ = kTimeNever;
};

class ShardGroup {
 public:
  struct Options {
    int shards = 1;
    // 0 = auto (one thread per shard, capped at the hardware concurrency;
    // serial when the host has a single core). 1 = run windows inline with
    // no worker threads. n > 1 = n workers, shards distributed round-robin.
    int threads = 0;
  };

  struct Stats {
    uint64_t windows = 0;      // conservative windows executed
    uint64_t sync_points = 0;  // control-batch quiesce points
    uint64_t messages = 0;     // boundary records delivered (spans + posts)
    uint64_t handoffs = 0;     // staging-batch swaps across the mailbox; deferral makes
                               // one swap carry every train staged since the
                               // destination last caught up
    uint64_t merges = 0;       // windows that pulled at least one batch across
                               // (zero-traffic windows skip the merge pass)
  };

  // `control` is the externally owned control simulator (it is NOT run by
  // worker threads; see the class comment). Shard simulators are created
  // and owned by the group.
  ShardGroup(Simulator* control, Options options);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  Simulator* control() const { return control_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }
  int thread_count() const { return threads_ == 0 ? 1 : threads_; }
  Simulator* shard(int i) { return shards_[static_cast<size_t>(i)].get(); }
  // Index of `s` among the shards, or -1 (control / foreign simulator).
  int shard_index(const Simulator* s) const;

  // Declares a directed boundary link from `src`'s shard to `dst`'s shard
  // whose earliest cross-shard effect lags emission by `lookahead` (> 0;
  // for an ATM link, its propagation delay). Only the destination shard's
  // windows are bounded by it — per-channel lookahead, not a group-wide
  // minimum. Both simulators must be shards of this group.
  BoundaryChannel* RegisterBoundary(Simulator* src, Simulator* dst, DurationNs lookahead);

  // Runs every shard and the control simulator through time `t`, with
  // RunUntil(t) semantics on each clock (events at exactly `t` run; all
  // clocks end at `t`). Callable repeatedly with increasing times.
  void RunUntil(TimeNs t);

  // Quiesces every shard at `t` — no shard event before `t` left pending,
  // every shard clock parked at exactly `t` — and then runs ALL control
  // events at or before `t` as ONE batch. Consecutive control events at the
  // same timestamp (a Poisson arrival burst, a monitor tick plus a metrics
  // tick) cost a single quiesce, not one per event. One sync point is
  // charged per batch. RunUntil is a loop over this primitive.
  void RunControlBatch(TimeNs t);

  const Stats& stats() const { return stats_; }
  // Smallest registered boundary lookahead, or kTimeNever when no boundary
  // has been registered. Purely informational: windows are bounded per
  // channel, never by this minimum.
  DurationNs lookahead() const { return min_lookahead_; }

 private:
  friend class BoundaryChannel;

  // What one shard does inside the current window.
  enum class WindowMode : uint8_t {
    kSkip = 0,       // no event before its horizon; not touched at all
    kExclusive = 1,  // RunUntilBefore(horizon)
    kInclusive = 2,  // RunUntil(horizon) — end-of-run windows only
  };

  // Runs conservative windows until no shard holds an event before `limit`
  // (`inclusive` widens that to "at or before"), then parks every shard
  // clock at `limit`.
  void AdvanceShards(TimeNs limit, bool inclusive);
  // Fills next_times_ with every shard's earliest pending work — scheduled
  // events and unreleased boundary records both — and returns the minimum.
  TimeNs SnapshotNextEvents();
  // Computes per-shard horizons/modes for one window from the next_times_
  // snapshot and releases every pending boundary record the new horizons
  // cover. Returns the number of shards with work (mode != kSkip).
  int PlanWindow(TimeNs limit, bool inclusive);
  // One window: every planned shard runs to its own horizon — on the worker
  // pool when more than one shard has work, inline otherwise.
  void ExecuteWindow(int active);
  void RunShardsSlice(size_t first, size_t stride);
  // Moves channels that posted since the last call onto their destination's
  // staged list (no swap yet — the batch keeps accumulating until a horizon
  // needs it). O(channels newly dirtied); a window with zero boundary
  // traffic falls straight through.
  void StageOutboxes();
  // Swaps every staged channel of shard d whose earliest record the new
  // horizon covers, indexing its records into d's pending queue. Deferring
  // the swap to this point lets one hand-off carry every window's trains
  // accumulated since the destination last caught up.
  void CollectStaged(size_t d, TimeNs bound);
  // Schedules every pending record for shard d with deliver_at < bound, in
  // the deterministic (deliver_at, channel registration, emission order)
  // merge. The caller passes the shard's window horizon: by the invariant
  // above, every record with deliver_at below it has already arrived.
  void ReleasePending(size_t d, TimeNs bound);

  // Worker-pool plumbing (workers_ empty in serial mode).
  void WorkerLoop(int worker);
  uint64_t AwaitEpoch(uint64_t seen);

  Simulator* control_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::unique_ptr<BoundaryChannel>> channels_;
  DurationNs min_lookahead_ = kTimeNever;
  Stats stats_;

  // Per destination shard: the inbound (source shard, lookahead) bounds,
  // collapsed to the tightest lookahead per source pair.
  struct InboundBound {
    int src;
    DurationNs lookahead;
  };
  std::vector<std::vector<InboundBound>> inbound_;

  // Window plan, written by the coordinator before each window and read by
  // the workers (the epoch barrier orders the accesses).
  std::vector<TimeNs> next_times_;
  // next_times_ relaxed to a fixpoint over the channel graph: the earliest
  // instant each shard could execute anything this window, counting events
  // it may still receive (transitively) from other shards. Scratch for
  // PlanWindow, kept as a member to avoid per-window allocation.
  std::vector<TimeNs> effective_;
  std::vector<TimeNs> horizons_;
  std::vector<WindowMode> modes_;

  // Channels that posted something this window, grouped by source shard so
  // concurrent windows never contend on one list.
  std::vector<std::vector<BoundaryChannel*>> dirty_;
  // Dirty channels re-grouped by DESTINATION (coordinator only), plus the
  // earliest staged deliver_at per destination. A channel sits here — its
  // staging batch still accumulating — until the destination's horizon
  // first covers one of its records; only then does the batch cross the
  // mailbox.
  std::vector<std::vector<BoundaryChannel*>> staged_;
  std::vector<TimeNs> staged_min_;

  // One received-but-unreleased boundary record. The shared batch keeps the
  // payload arena (and the posts' handlers) alive until the last delivery
  // from it has run.
  struct PendingRecord {
    TimeNs deliver_at;
    uint64_t order;
    uint32_t channel;
    uint32_t index;
    bool is_span;
    std::shared_ptr<BoundaryChannel::Batch> batch;
  };
  // Per-destination holding area (coordinator only). Records append raw at
  // collect time; the release pass sorts the unreleased tail on demand and
  // consumes a prefix, compacting amortised O(1) per record.
  struct PendingQueue {
    std::vector<PendingRecord> items;
    size_t head = 0;        // items before head are released
    size_t sorted_end = 0;  // items[head, sorted_end) are sorted; the rest raw
    TimeNs min_deliver = kTimeNever;
  };
  std::vector<PendingQueue> pending_;

  // Sense-reversing epoch barrier: the coordinator publishes a window by
  // bumping epoch_ (release) and waits for done_epoch_ to catch up; each
  // worker spins briefly on epoch_ before blocking on the condvar, runs its
  // slice, and the last one through remaining_ publishes done_epoch_.
  int threads_ = 0;  // 0 = serial
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> done_epoch_{0};
  std::atomic<int> remaining_{0};
  std::atomic<bool> shutdown_{false};
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
};

}  // namespace pegasus::sim

#endif  // PEGASUS_SRC_SIM_SHARD_H_
