#include "src/sim/event_queue.h"

#include <utility>

namespace pegasus::sim {

namespace {

constexpr uint64_t kSlotMask = 0xFFFFFFFFull;

uint64_t PackId(uint32_t slot, uint32_t gen) {
  // slot+1 keeps the value nonzero so EventId{}.valid() stays false.
  return (static_cast<uint64_t>(gen) << 32) | (static_cast<uint64_t>(slot) + 1);
}

}  // namespace

uint32_t Simulator::AcquireSlot() {
  if (!free_slots_.empty()) {
    const uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  if (slot_count_ == chunks_.size() * kChunkSize) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return static_cast<uint32_t>(slot_count_++);
}

EventId Simulator::ScheduleAt(TimeNs t, Handler fn) {
  if (t < now_) {
    t = now_;
  }
  const uint32_t index = AcquireSlot();
  Slot& slot = SlotAt(index);
  slot.fn = std::move(fn);
  slot.seq = next_seq_;
  queue_.push(HeapEntry{t, next_seq_, index});
  ++next_seq_;
  ++live_;
  return EventId{PackId(index, slot.gen)};
}

void Simulator::ReleaseSlot(uint32_t index) {
  Slot& slot = SlotAt(index);
  slot.fn = Handler();
  slot.seq = 0;
  ++slot.gen;
  free_slots_.push_back(index);
}

bool Simulator::Cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  const uint32_t index = static_cast<uint32_t>((id.value & kSlotMask) - 1);
  const uint32_t gen = static_cast<uint32_t>(id.value >> 32);
  if (index >= slot_count_) {
    return false;
  }
  Slot& slot = SlotAt(index);
  if (slot.gen != gen || slot.seq == 0) {
    // Already ran, already cancelled, or the slot moved on to a newer event.
    return false;
  }
  // The heap entry stays behind as a tombstone; the pop loop discards it by
  // seeing a seq mismatch. The slot itself is reusable right away.
  ReleaseSlot(index);
  --live_;
  return true;
}

bool Simulator::SkimStaleHead() {
  while (!queue_.empty() && !EntryLive(queue_.top())) {
    queue_.pop();
  }
  return !queue_.empty();
}

bool Simulator::Step() {
  if (!SkimStaleHead()) {
    return false;
  }
  const HeapEntry entry = queue_.top();
  queue_.pop();
  now_ = entry.time;
  // Move the handler out and release the slot before invoking, so the
  // handler is free to schedule (and land in this very slot).
  Handler fn = std::move(SlotAt(entry.slot).fn);
  ReleaseSlot(entry.slot);
  --live_;
  ++executed_;
  fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(TimeNs t) {
  while (SkimStaleHead() && queue_.top().time <= t) {
    Step();
  }
  if (now_ < t) {
    now_ = t;
  }
}

void Simulator::RunUntilBefore(TimeNs t) {
  while (SkimStaleHead() && queue_.top().time < t) {
    Step();
  }
  if (now_ < t) {
    now_ = t;
  }
}

TimeNs Simulator::NextEventTime() {
  return SkimStaleHead() ? queue_.top().time : kTimeNever;
}

bool Simulator::RunUntilPredicate(const std::function<bool()>& pred) {
  if (pred()) {
    return true;
  }
  while (Step()) {
    if (pred()) {
      return true;
    }
  }
  return false;
}

}  // namespace pegasus::sim
