#include "src/sim/event_queue.h"

#include <utility>

namespace pegasus::sim {

EventId Simulator::ScheduleAt(TimeNs t, Handler fn) {
  if (t < now_) {
    t = now_;
  }
  const uint64_t id = next_seq_;
  queue_.push(Entry{t, next_seq_, id, std::move(fn)});
  ++next_seq_;
  return EventId{id};
}

bool Simulator::Cancel(EventId id) {
  if (!id.valid()) {
    return false;
  }
  // The id may already have run: ids are queue sequence numbers, so an id that
  // is no longer pending is simply absent. Track it only if still pending.
  // We cannot cheaply test membership in the priority queue, so record the
  // cancellation and let the pop loop discard it; report success based on
  // whether the id could still be pending.
  if (id.value >= next_seq_) {
    return false;
  }
  auto [it, inserted] = cancelled_.insert(id.value);
  (void)it;
  return inserted;
}

void Simulator::DiscardCancelledHead() {
  while (!queue_.empty()) {
    const Entry& head = queue_.top();
    auto it = cancelled_.find(head.id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    queue_.pop();
  }
}

bool Simulator::Step() {
  DiscardCancelledHead();
  if (queue_.empty()) {
    return false;
  }
  // Move the handler out before popping so the entry can schedule new events.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.time;
  ++executed_;
  entry.fn();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(TimeNs t) {
  for (;;) {
    DiscardCancelledHead();
    if (queue_.empty() || queue_.top().time > t) {
      break;
    }
    Step();
  }
  if (now_ < t) {
    now_ = t;
  }
}

bool Simulator::RunUntilPredicate(const std::function<bool()>& pred) {
  if (pred()) {
    return true;
  }
  while (Step()) {
    if (pred()) {
      return true;
    }
  }
  return false;
}

}  // namespace pegasus::sim
