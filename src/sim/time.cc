#include "src/sim/time.h"

#include <cstdio>

namespace pegasus::sim {

std::string FormatDuration(DurationNs d) {
  char buf[64];
  const double nd = static_cast<double>(d);
  if (d < 0) {
    return "-" + FormatDuration(-d);
  }
  if (d < 1'000) {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(d));
  } else if (d < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", nd / 1e3);
  } else if (d < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", nd / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", nd / 1e9);
  }
  return buf;
}

}  // namespace pegasus::sim
