// Measurement primitives used by tests and benchmark harnesses.
#ifndef PEGASUS_SRC_SIM_STATS_H_
#define PEGASUS_SRC_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace pegasus::sim {

// Accumulates scalar samples and reports summary statistics. Stores all
// samples so exact quantiles are available; simulation runs are small enough
// that this is the right trade-off.
class Summary {
 public:
  void Add(double v);

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const;
  // Population standard deviation; 0 for fewer than two samples.
  double stddev() const;
  // Exact quantile by nearest-rank, q in [0, 1]. Returns 0 when empty.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  mutable bool sorted_ = true;
  mutable std::vector<double> sorted_samples_;

  void EnsureSorted() const;
};

// Fixed-bucket histogram over [lo, hi) with `buckets` equal-width bins plus
// underflow/overflow bins. Used for latency and jitter distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double v);

  int64_t count() const { return count_; }
  int64_t bucket_count(int i) const { return counts_[static_cast<size_t>(i)]; }
  int buckets() const { return static_cast<int>(counts_.size()); }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  double bucket_lo(int i) const;
  double bucket_hi(int i) const;

  // Renders a compact ASCII sketch, one line per non-empty bucket.
  std::string ToString(const std::string& unit) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t count_ = 0;
};

// Monotonic named counter. Cheap enough to sprinkle through hot paths.
class Counter {
 public:
  void Increment(int64_t by = 1) { value_ += by; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

}  // namespace pegasus::sim

#endif  // PEGASUS_SRC_SIM_STATS_H_
