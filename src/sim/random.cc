#include "src/sim/random.h"

#include <cmath>

namespace pegasus::sim {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % span);
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::BoundedPareto(double alpha, double lo, double hi) {
  const double u = UniformDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

int64_t Rng::Zipf(int64_t n, double theta) {
  if (n != zipf_n_ || theta != zipf_theta_) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_norm_ = 0.0;
    for (int64_t i = 1; i <= n; ++i) {
      zipf_norm_ += 1.0 / std::pow(static_cast<double>(i), theta);
    }
  }
  double target = UniformDouble() * zipf_norm_;
  double sum = 0.0;
  for (int64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
    if (sum >= target) {
      return i - 1;
    }
  }
  return n - 1;
}

}  // namespace pegasus::sim
