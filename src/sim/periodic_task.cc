#include "src/sim/periodic_task.h"

#include <utility>

namespace pegasus::sim {

PeriodicTask::PeriodicTask(Simulator* sim, DurationNs period, std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  Arm();
}

void PeriodicTask::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  if (pending_.valid()) {
    sim_->Cancel(pending_);
    pending_ = EventId{};
  }
}

void PeriodicTask::Arm() {
  pending_ = sim_->ScheduleAfter(period_, [this]() {
    pending_ = EventId{};
    if (!running_) {
      return;
    }
    ++ticks_;
    fn_();
    // The callback may have stopped the task (or re-armed it itself).
    if (running_ && !pending_.valid()) {
      Arm();
    }
  });
}

}  // namespace pegasus::sim
