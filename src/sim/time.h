// Simulated-time primitives for the Pegasus reproduction.
//
// All subsystems (ATM network, Nemesis scheduler, disks, devices) share one
// virtual clock expressed in integer nanoseconds. Integer time keeps every
// simulation deterministic and makes cross-module arithmetic exact.
#ifndef PEGASUS_SRC_SIM_TIME_H_
#define PEGASUS_SRC_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace pegasus::sim {

// A point in simulated time, in nanoseconds since simulation start.
using TimeNs = int64_t;

// A span of simulated time, in nanoseconds. Kept as a distinct alias for
// readability; the representation is identical to TimeNs.
using DurationNs = int64_t;

// Sentinel for "no deadline" / "never".
inline constexpr TimeNs kTimeNever = INT64_MAX;

// Duration constructors. Values are exact (integer multiplication).
constexpr DurationNs Nanoseconds(int64_t n) { return n; }
constexpr DurationNs Microseconds(int64_t us) { return us * 1'000; }
constexpr DurationNs Milliseconds(int64_t ms) { return ms * 1'000'000; }
constexpr DurationNs Seconds(int64_t s) { return s * 1'000'000'000; }

// Duration accessors (truncating).
constexpr int64_t ToMicroseconds(DurationNs d) { return d / 1'000; }
constexpr int64_t ToMilliseconds(DurationNs d) { return d / 1'000'000; }
constexpr double ToSecondsF(DurationNs d) { return static_cast<double>(d) / 1e9; }

// Renders a duration with an adaptive unit, e.g. "33.0ms", "38.6us", "250ns".
// Intended for log and benchmark-table output.
std::string FormatDuration(DurationNs d);

// Computes the time to serialise `bytes` onto a link of `bits_per_second`.
// Rounds up so that back-to-back transmissions never overlap.
constexpr DurationNs TransmissionTime(int64_t bytes, int64_t bits_per_second) {
  // ns = bytes * 8 * 1e9 / bps, computed to avoid overflow for realistic rates.
  return (bytes * 8 * 1'000'000'000 + bits_per_second - 1) / bits_per_second;
}

}  // namespace pegasus::sim

#endif  // PEGASUS_SRC_SIM_TIME_H_
