#include "src/sim/shard.h"

#include <algorithm>
#include <cassert>

namespace pegasus::sim {

namespace {

TimeNs SaturatingAdd(TimeNs t, DurationNs d) {
  return d >= kTimeNever - t ? kTimeNever : t + d;
}

}  // namespace

ShardGroup::ShardGroup(Simulator* control, Options options) : control_(control) {
  const int count = std::max(1, options.shards);
  shards_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  inbox_.resize(static_cast<size_t>(count));

  int threads = options.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min(count, static_cast<int>(hw == 0 ? 1 : hw));
  }
  threads = std::min(std::max(threads, 1), count);
  if (threads > 1) {
    threads_ = threads;
    workers_.reserve(static_cast<size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      workers_.emplace_back([this, w]() {
        uint64_t seen = 0;
        for (;;) {
          TimeNs horizon;
          bool inclusive;
          {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this, seen]() { return shutdown_ || epoch_ != seen; });
            if (shutdown_) {
              return;
            }
            seen = epoch_;
            horizon = task_horizon_;
            inclusive = task_inclusive_;
          }
          RunShardsSlice(w, horizon, inclusive);
          {
            std::lock_guard<std::mutex> lock(mu_);
            if (--remaining_ == 0) {
              done_cv_.notify_one();
            }
          }
        }
      });
    }
  }
}

ShardGroup::~ShardGroup() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }
}

int ShardGroup::shard_index(const Simulator* s) const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].get() == s) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

BoundaryChannel* ShardGroup::RegisterBoundary(Simulator* src, Simulator* dst,
                                              DurationNs lookahead) {
  const int src_idx = shard_index(src);
  const int dst_idx = shard_index(dst);
  assert(src_idx >= 0 && dst_idx >= 0 && src_idx != dst_idx);
  assert(lookahead > 0);  // zero lookahead would stall the window loop
  channels_.push_back(std::unique_ptr<BoundaryChannel>(
      new BoundaryChannel(src_idx, dst_idx, static_cast<uint32_t>(channels_.size()))));
  lookahead_ = std::min(lookahead_, lookahead);
  return channels_.back().get();
}

void ShardGroup::RunShardsSlice(int worker, TimeNs horizon, bool inclusive) {
  const int stride = threads_ == 0 ? 1 : threads_;
  for (size_t i = static_cast<size_t>(worker); i < shards_.size(); i += stride) {
    if (inclusive) {
      shards_[i]->RunUntil(horizon);
    } else {
      shards_[i]->RunUntilBefore(horizon);
    }
  }
}

void ShardGroup::ExecuteWindow(TimeNs horizon, bool inclusive) {
  if (workers_.empty()) {
    RunShardsSlice(0, horizon, inclusive);
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      task_horizon_ = horizon;
      task_inclusive_ = inclusive;
      remaining_ = threads_;
      ++epoch_;
    }
    work_cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this]() { return remaining_ == 0; });
  }
  ++stats_.windows;
}

void ShardGroup::CollectOutboxes() {
  for (const auto& channel : channels_) {
    if (channel->outbox_.empty()) {
      continue;
    }
    auto& in = inbox_[static_cast<size_t>(channel->dst_)];
    for (BoundaryChannel::Message& m : channel->outbox_) {
      in.push_back(Pending{m.deliver_at, channel->id_, m.order, std::move(m.fn)});
    }
    channel->outbox_.clear();
  }
}

void ShardGroup::DrainInboxes() {
  for (size_t d = 0; d < inbox_.size(); ++d) {
    auto& in = inbox_[d];
    if (in.empty()) {
      continue;
    }
    // Deterministic merge: delivery time first, then channel registration
    // order, then per-channel emission order — a total order independent of
    // thread interleaving.
    std::sort(in.begin(), in.end(), [](const Pending& a, const Pending& b) {
      if (a.deliver_at != b.deliver_at) {
        return a.deliver_at < b.deliver_at;
      }
      if (a.channel != b.channel) {
        return a.channel < b.channel;
      }
      return a.order < b.order;
    });
    for (Pending& p : in) {
      shards_[d]->ScheduleAt(p.deliver_at, std::move(p.fn));
    }
    stats_.messages += in.size();
    in.clear();
  }
}

TimeNs ShardGroup::MinNextEventTime() {
  TimeNs n = kTimeNever;
  for (const auto& shard : shards_) {
    n = std::min(n, shard->NextEventTime());
  }
  return n;
}

void ShardGroup::AdvanceShards(TimeNs limit, bool inclusive) {
  for (;;) {
    DrainInboxes();
    const TimeNs n = MinNextEventTime();
    if (n > limit || (!inclusive && n == limit)) {
      break;
    }
    // The conservative horizon: nothing emitted at or after `n` can take
    // effect on another shard before n + lookahead, so every shard may run
    // events strictly before that. Capped at the sync point — and when the
    // cap is what binds in the inclusive (end-of-run) case, events at the
    // limit itself are safe to run (messages they emit land strictly later).
    const TimeNs reach = SaturatingAdd(n, lookahead_);
    if (inclusive && reach > limit) {
      ExecuteWindow(limit, /*inclusive=*/true);
    } else {
      ExecuteWindow(std::min(reach, limit), /*inclusive=*/false);
    }
    CollectOutboxes();
  }
  // Quiesce: no shard holds an event before (at, when inclusive) `limit`;
  // park every clock exactly there so code running at the sync point reads
  // coherent clocks. Touching the shards from this thread is safe between
  // windows (the barrier ordered the owners out).
  for (const auto& shard : shards_) {
    if (inclusive) {
      shard->RunUntil(limit);
    } else {
      shard->RunUntilBefore(limit);
    }
  }
}

void ShardGroup::RunUntil(TimeNs t) {
  // Every control event is a global sync point: shards are quiesced AT the
  // event's timestamp before it executes, so it observes — and may mutate —
  // the exact state the single-threaded schedule would have produced.
  for (;;) {
    const TimeNs t_control = control_->NextEventTime();
    if (t_control > t) {
      break;
    }
    AdvanceShards(t_control, /*inclusive=*/false);
    control_->RunUntil(t_control);
    ++stats_.sync_points;
  }
  // No control events remain at or before `t`: finish shard events through
  // `t` (inclusive, matching Simulator::RunUntil) and park the clocks.
  AdvanceShards(t, /*inclusive=*/true);
  control_->RunUntil(t);
}

}  // namespace pegasus::sim
