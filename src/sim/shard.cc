#include "src/sim/shard.h"

#include <algorithm>
#include <cassert>

namespace pegasus::sim {

namespace {

TimeNs SaturatingAdd(TimeNs t, DurationNs d) {
  return d >= kTimeNever - t ? kTimeNever : t + d;
}

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

// How long a thread spins on the epoch atomics before falling back to the
// condvar. Windows are microseconds apart under load, so a short spin
// usually catches the next one without a futex round trip; on a single
// hardware thread spinning only steals cycles from the thread being waited
// on, so don't.
int SpinBudget() {
  return std::thread::hardware_concurrency() > 1 ? 2048 : 1;
}

}  // namespace

BoundaryChannel::Batch& BoundaryChannel::Staging() {
  if (!staging_) {
    staging_ = std::make_unique<Batch>();
    staging_->channel = id_;
    // Dirty lists are per source shard: only this channel's owner thread
    // writes this list during a window, and the coordinator reads it after
    // the barrier.
    group_->dirty_[static_cast<size_t>(src_)].push_back(this);
  }
  return *staging_;
}

ShardGroup::ShardGroup(Simulator* control, Options options) : control_(control) {
  const int count = std::max(1, options.shards);
  shards_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  inbound_.resize(static_cast<size_t>(count));
  next_times_.resize(static_cast<size_t>(count), kTimeNever);
  horizons_.resize(static_cast<size_t>(count), kTimeNever);
  modes_.resize(static_cast<size_t>(count), WindowMode::kSkip);
  dirty_.resize(static_cast<size_t>(count));
  staged_.resize(static_cast<size_t>(count));
  staged_min_.resize(static_cast<size_t>(count), kTimeNever);
  pending_.resize(static_cast<size_t>(count));

  int threads = options.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min(count, static_cast<int>(hw == 0 ? 1 : hw));
  }
  threads = std::min(std::max(threads, 1), count);
  if (threads > 1) {
    threads_ = threads;
    workers_.reserve(static_cast<size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      workers_.emplace_back([this, w]() { WorkerLoop(w); });
    }
  }
}

ShardGroup::~ShardGroup() {
  // Workers are only ever parked between windows here (ExecuteWindow does
  // not return until every slice finished), so tearing down reduces to
  // waking the parked threads. The store happens under mu_ so a worker that
  // just evaluated its wait predicate cannot sleep through the notify, and
  // the spin path re-checks shutdown_ on every iteration.
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_.store(true, std::memory_order_release);
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }
}

int ShardGroup::shard_index(const Simulator* s) const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].get() == s) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

BoundaryChannel* ShardGroup::RegisterBoundary(Simulator* src, Simulator* dst,
                                              DurationNs lookahead) {
  const int src_idx = shard_index(src);
  const int dst_idx = shard_index(dst);
  assert(src_idx >= 0 && dst_idx >= 0 && src_idx != dst_idx);
  assert(lookahead > 0);  // zero lookahead would stall the window loop
  channels_.push_back(std::unique_ptr<BoundaryChannel>(new BoundaryChannel(
      this, src, src_idx, dst_idx, static_cast<uint32_t>(channels_.size()), lookahead)));
  min_lookahead_ = std::min(min_lookahead_, lookahead);
  // The destination's window bound only needs the tightest lookahead per
  // source shard, not one entry per parallel link.
  auto& bounds = inbound_[static_cast<size_t>(dst_idx)];
  bool merged = false;
  for (InboundBound& b : bounds) {
    if (b.src == src_idx) {
      b.lookahead = std::min(b.lookahead, lookahead);
      merged = true;
      break;
    }
  }
  if (!merged) {
    bounds.push_back(InboundBound{src_idx, lookahead});
  }
  return channels_.back().get();
}

TimeNs ShardGroup::SnapshotNextEvents() {
  TimeNs n = kTimeNever;
  for (size_t i = 0; i < shards_.size(); ++i) {
    // An unreleased boundary record IS a future event of its destination —
    // whether it already crossed the mailbox (pending) or still sits in a
    // source channel's staging batch (staged) — and must hold the window
    // loop open and bound other shards' horizons exactly as a scheduled
    // event would. The staged minimum is recomputed here because a staged
    // channel keeps accumulating between snapshots.
    TimeNs smin = kTimeNever;
    for (const BoundaryChannel* c : staged_[i]) {
      smin = std::min(smin, c->staging_min_);
    }
    staged_min_[i] = smin;
    const TimeNs t = std::min({shards_[i]->NextEventTime(), pending_[i].min_deliver, smin});
    next_times_[i] = t;
    n = std::min(n, t);
  }
  return n;
}

int ShardGroup::PlanWindow(TimeNs limit, bool inclusive) {
  // Per-channel lookahead: nothing can reach shard d over channel c before
  // next_event(source(c)) + lookahead(c). But "next_event(source)" is not
  // the source's own queue alone — the source may be woken THIS window by a
  // train from a third shard and emit earlier than its snapshot suggests.
  // So first relax the snapshot to a fixpoint: effective[i] is the earliest
  // instant shard i could execute ANY event this window, whether already
  // queued or still in flight from a neighbour. Lookaheads are strictly
  // positive and the values only ever decrease toward the global minimum,
  // so the relaxation terminates (in ≤ diameter passes in practice).
  effective_ = next_times_;
  for (bool changed = true; changed;) {
    changed = false;
    for (size_t d = 0; d < shards_.size(); ++d) {
      for (const InboundBound& b : inbound_[d]) {
        const TimeNs via =
            SaturatingAdd(effective_[static_cast<size_t>(b.src)], b.lookahead);
        if (via < effective_[d]) {
          effective_[d] = via;
          changed = true;
        }
      }
    }
  }
  int active = 0;
  bool merged = false;
  for (size_t i = 0; i < shards_.size(); ++i) {
    // A shard whose neighbours (and their transitive feeders) are quiet
    // still runs straight to the sync point regardless of how small some
    // distant pair's lookahead is — idle chains relax to kTimeNever.
    TimeNs horizon = kTimeNever;
    for (const InboundBound& b : inbound_[i]) {
      horizon = std::min(horizon,
                         SaturatingAdd(effective_[static_cast<size_t>(b.src)], b.lookahead));
    }
    // Everything bound for this shard below its horizon has already been
    // posted (the sources could not emit it later without violating their
    // lookahead), so the release is complete per delivery instant: pull the
    // staged batches the horizon now needs across the mailbox, then
    // schedule every covered record.
    if (staged_min_[i] < horizon) {
      CollectStaged(i, horizon);
      merged = true;
    }
    ReleasePending(i, horizon);
    WindowMode mode = WindowMode::kSkip;
    TimeNs target;
    if (inclusive && horizon > limit) {
      // End-of-run window bound by the cap, not a channel: events at the
      // limit itself are safe to run (anything they emit lands strictly
      // later than limit).
      target = limit;
      if (next_times_[i] <= limit) {
        mode = WindowMode::kInclusive;
      }
    } else {
      target = std::min(horizon, limit);
      if (next_times_[i] < target) {
        mode = WindowMode::kExclusive;
      }
    }
    horizons_[i] = target;
    modes_[i] = mode;
    if (mode != WindowMode::kSkip) {
      ++active;
    }
  }
  if (merged) {
    ++stats_.merges;
  }
  return active;
}

void ShardGroup::RunShardsSlice(size_t first, size_t stride) {
  for (size_t i = first; i < shards_.size(); i += stride) {
    switch (modes_[i]) {
      case WindowMode::kSkip:
        // No event before this shard's horizon: don't even park its clock —
        // the final quiesce in AdvanceShards does that once, not per window.
        break;
      case WindowMode::kExclusive:
        shards_[i]->RunUntilBefore(horizons_[i]);
        break;
      case WindowMode::kInclusive:
        shards_[i]->RunUntil(horizons_[i]);
        break;
    }
  }
}

uint64_t ShardGroup::AwaitEpoch(uint64_t seen) {
  const int budget = SpinBudget();
  for (int spin = 0; spin < budget; ++spin) {
    const uint64_t e = epoch_.load(std::memory_order_acquire);
    if (e != seen || shutdown_.load(std::memory_order_acquire)) {
      return e;
    }
    CpuRelax();
  }
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.wait(lock, [this, seen]() {
    return epoch_.load(std::memory_order_acquire) != seen ||
           shutdown_.load(std::memory_order_acquire);
  });
  return epoch_.load(std::memory_order_acquire);
}

void ShardGroup::WorkerLoop(int worker) {
  uint64_t seen = 0;
  for (;;) {
    const uint64_t e = AwaitEpoch(seen);
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }
    seen = e;  // the acquire on epoch_ ordered the coordinator's plan writes
    RunShardsSlice(static_cast<size_t>(worker), static_cast<size_t>(threads_));
    // Last worker through publishes the epoch as done; the acq_rel chain on
    // remaining_ makes every worker's shard writes visible to whoever
    // acquires done_epoch_.
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done_epoch_.store(e, std::memory_order_release);
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_one();
    }
  }
}

void ShardGroup::ExecuteWindow(int active) {
  // Serial mode, or only one shard has work this window: run inline on the
  // coordinating thread. No epoch bump, no barrier, no futex — on sparse
  // fleets most windows take this path.
  if (workers_.empty() || active <= 1) {
    RunShardsSlice(0, 1);
    return;
  }
  remaining_.store(threads_, std::memory_order_relaxed);
  const uint64_t e = epoch_.load(std::memory_order_relaxed) + 1;
  {
    // Publishing under mu_ keeps the condvar handshake lost-wakeup-free for
    // blocked workers; spinning workers see the release store directly.
    std::lock_guard<std::mutex> lock(mu_);
    epoch_.store(e, std::memory_order_release);
  }
  work_cv_.notify_all();
  const int budget = SpinBudget();
  for (int spin = 0; spin < budget; ++spin) {
    if (done_epoch_.load(std::memory_order_acquire) == e) {
      return;
    }
    CpuRelax();
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock,
                [this, e]() { return done_epoch_.load(std::memory_order_acquire) == e; });
}

void ShardGroup::StageOutboxes() {
  // O(channels newly dirtied): a channel lands on its destination's staged
  // list the first time it posts into a fresh batch and stays there — batch
  // still accumulating — until CollectStaged pulls it across. A pass with
  // zero new boundary traffic falls straight through.
  for (auto& list : dirty_) {
    for (BoundaryChannel* c : list) {
      staged_[static_cast<size_t>(c->dst_)].push_back(c);
    }
    list.clear();
  }
}

void ShardGroup::CollectStaged(size_t d, TimeNs bound) {
  // The swap itself: each covered channel's whole staging batch is moved —
  // one pointer swap — out of the channel, and its records indexed into the
  // destination's pending queue. Channels whose earliest record the horizon
  // does not reach keep accumulating: that deferral is what lets one
  // hand-off carry several windows' worth of trains.
  auto& list = staged_[d];
  TimeNs remaining_min = kTimeNever;
  size_t kept = 0;
  for (BoundaryChannel* c : list) {
    if (c->staging_min_ >= bound) {
      remaining_min = std::min(remaining_min, c->staging_min_);
      list[kept++] = c;
      continue;
    }
    std::shared_ptr<BoundaryChannel::Batch> batch(c->staging_.release());
    c->staging_min_ = kTimeNever;
    PendingQueue& q = pending_[d];
    const uint32_t channel = c->id_;
    for (uint32_t k = 0; k < batch->spans.size(); ++k) {
      const BoundaryChannel::SpanRecord& r = batch->spans[k];
      q.min_deliver = std::min(q.min_deliver, r.deliver_at);
      q.items.push_back(PendingRecord{r.deliver_at, r.order, channel, k, true, batch});
    }
    for (uint32_t k = 0; k < batch->posts.size(); ++k) {
      const BoundaryChannel::PostRecord& r = batch->posts[k];
      q.min_deliver = std::min(q.min_deliver, r.deliver_at);
      q.items.push_back(PendingRecord{r.deliver_at, r.order, channel, k, false, batch});
    }
    ++stats_.handoffs;
  }
  list.resize(kept);
  staged_min_[d] = remaining_min;
}

void ShardGroup::ReleasePending(size_t d, TimeNs bound) {
  PendingQueue& q = pending_[d];
  if (q.min_deliver >= bound) {
    return;
  }
  if (q.sorted_end < q.items.size()) {
    // Deterministic merge: delivery time first, then channel registration
    // order, then per-channel emission order — a total order independent of
    // partitioning and thread interleaving. (The key is unique: emission
    // order is monotone per channel.)
    std::sort(q.items.begin() + static_cast<ptrdiff_t>(q.head), q.items.end(),
              [](const PendingRecord& a, const PendingRecord& b) {
                if (a.deliver_at != b.deliver_at) {
                  return a.deliver_at < b.deliver_at;
                }
                if (a.channel != b.channel) {
                  return a.channel < b.channel;
                }
                return a.order < b.order;
              });
    q.sorted_end = q.items.size();
  }
  Simulator* shard = shards_[d].get();
  while (q.head < q.items.size() && q.items[q.head].deliver_at < bound) {
    PendingRecord& item = q.items[q.head];
    if (item.is_span) {
      // The delivery event shares ownership of the batch: payload bytes
      // stay in the arena until the last delivery from it has run.
      shard->ScheduleAt(item.deliver_at,
                        [batch = std::move(item.batch), idx = item.index]() {
                          const BoundaryChannel::SpanRecord& r = batch->spans[idx];
                          r.fn(r.ctx, batch->arena.data() + r.offset, r.size);
                        });
    } else {
      shard->ScheduleAt(item.deliver_at, std::move(item.batch->posts[item.index].fn));
      item.batch.reset();
    }
    ++q.head;
    ++stats_.messages;
  }
  if (q.head == q.items.size()) {
    q.items.clear();
    q.head = 0;
    q.sorted_end = 0;
  } else if (q.head * 2 >= q.items.size()) {
    q.items.erase(q.items.begin(), q.items.begin() + static_cast<ptrdiff_t>(q.head));
    q.sorted_end -= q.head;
    q.head = 0;
  }
  q.min_deliver = q.head < q.items.size() ? q.items[q.head].deliver_at : kTimeNever;
}

void ShardGroup::AdvanceShards(TimeNs limit, bool inclusive) {
  for (;;) {
    // Stage first so the snapshot sees everything posted since the last
    // pass — the previous window's trains, and posts made outside any
    // window (control-batch code driving a boundary link directly).
    StageOutboxes();
    const TimeNs n = SnapshotNextEvents();
    if (n > limit || (!inclusive && n == limit)) {
      break;
    }
    // Progress is guaranteed: the shard holding the earliest event has a
    // horizon at least min-inbound-lookahead past it (lookaheads are > 0),
    // so that event runs this window.
    const int active = PlanWindow(limit, inclusive);
    ExecuteWindow(active);
    ++stats_.windows;
  }
  // Quiesce: no shard holds an event before (at, when inclusive) `limit`;
  // park every clock exactly there so code running at the sync point reads
  // coherent clocks. Touching the shards from this thread is safe between
  // windows (the barrier ordered the owners out).
  for (const auto& shard : shards_) {
    if (inclusive) {
      shard->RunUntil(limit);
    } else {
      shard->RunUntilBefore(limit);
    }
  }
}

void ShardGroup::RunControlBatch(TimeNs t) {
  // Quiesce the shards AT the batch's timestamp, then run every control
  // event at or before it under that single quiesce. Control code observes
  // — and may mutate — exactly the state the single-threaded schedule
  // would have produced.
  AdvanceShards(t, /*inclusive=*/false);
  control_->RunUntil(t);
  ++stats_.sync_points;
}

void ShardGroup::RunUntil(TimeNs t) {
  // Control events are global sync points, batched per distinct timestamp:
  // a burst of same-instant arrivals or a monitor tick plus a metrics tick
  // costs ONE quiesce.
  for (;;) {
    const TimeNs t_control = control_->NextEventTime();
    if (t_control > t) {
      break;
    }
    RunControlBatch(t_control);
  }
  // No control events remain at or before `t`: finish shard events through
  // `t` (inclusive, matching Simulator::RunUntil) and park the clocks.
  AdvanceShards(t, /*inclusive=*/true);
  control_->RunUntil(t);
}

}  // namespace pegasus::sim
