#include "src/sim/stats.h"

#include <cmath>
#include <cstdio>

namespace pegasus::sim {

void Summary::Add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_ = false;
}

double Summary::min() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) {
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

void Summary::EnsureSorted() const {
  if (!sorted_) {
    sorted_samples_ = samples_;
    std::sort(sorted_samples_.begin(), sorted_samples_.end());
    sorted_ = true;
  }
}

double Summary::Quantile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto n = sorted_samples_.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank > 0) {
    --rank;
  }
  if (rank >= n) {
    rank = n - 1;
  }
  return sorted_samples_[rank];
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / buckets), counts_(static_cast<size_t>(buckets), 0) {}

void Histogram::Add(double v) {
  ++count_;
  if (v < lo_) {
    ++underflow_;
    return;
  }
  if (v >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<size_t>((v - lo_) / width_);
  if (idx >= counts_.size()) {
    idx = counts_.size() - 1;
  }
  ++counts_[idx];
}

double Histogram::bucket_lo(int i) const { return lo_ + width_ * i; }
double Histogram::bucket_hi(int i) const { return lo_ + width_ * (i + 1); }

std::string Histogram::ToString(const std::string& unit) const {
  std::string out;
  char line[160];
  const int64_t peak = counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    int bars = peak > 0 ? static_cast<int>(counts_[i] * 40 / peak) : 0;
    std::snprintf(line, sizeof(line), "  [%10.1f, %10.1f) %-8s %8lld %s\n",
                  bucket_lo(static_cast<int>(i)), bucket_hi(static_cast<int>(i)), unit.c_str(),
                  static_cast<long long>(counts_[i]), std::string(static_cast<size_t>(bars), '#').c_str());
    out += line;
  }
  if (underflow_ > 0) {
    std::snprintf(line, sizeof(line), "  underflow %lld\n", static_cast<long long>(underflow_));
    out += line;
  }
  if (overflow_ > 0) {
    std::snprintf(line, sizeof(line), "  overflow  %lld\n", static_cast<long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace pegasus::sim
