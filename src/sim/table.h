// Plain-text table rendering for experiment harnesses.
//
// Every bench binary reproduces one of the paper's claims and prints a table
// of "paper says / we measured" rows; this helper keeps the output aligned
// and uniform across experiments.
#ifndef PEGASUS_SRC_SIM_TABLE_H_
#define PEGASUS_SRC_SIM_TABLE_H_

#include <string>
#include <vector>

namespace pegasus::sim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  // Renders with a header rule and column alignment.
  std::string ToString() const;

  // Formats a double with `prec` digits after the point.
  static std::string Num(double v, int prec = 2);
  static std::string Int(long long v);
  // Formats a ratio as "12.3x".
  static std::string Factor(double v, int prec = 1);
  // Formats a fraction as "12.3%".
  static std::string Percent(double fraction, int prec = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pegasus::sim

#endif  // PEGASUS_SRC_SIM_TABLE_H_
