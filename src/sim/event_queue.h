// Discrete-event simulation engine.
//
// A Simulator owns the virtual clock and a time-ordered queue of pending
// events. Components schedule closures at absolute or relative times; the
// main loop pops them in (time, insertion-order) order, so runs are fully
// deterministic. Events can be cancelled, which is used for timer-style
// behaviour (retransmission timers, scheduler preemption points).
//
// Engine internals are built for cell-rate churn (the data plane schedules
// an event per cell train):
//   - Handlers are stored in an inline small-buffer callable (Handler), so
//     closures up to kInlineSize bytes never touch the heap. Larger ones
//     fall back to a single allocation.
//   - Handlers live in a slab of reusable slots; the priority queue holds
//     only small POD entries {time, seq, slot}.
//   - EventIds carry the slot's generation, so Cancel is O(1), an id that
//     already ran (or was already cancelled) is rejected without any
//     bookkeeping growth, and a cancelled slot is reusable immediately.
#ifndef PEGASUS_SRC_SIM_EVENT_QUEUE_H_
#define PEGASUS_SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace pegasus::sim {

// Opaque handle for cancelling a scheduled event. Encodes a slot index plus
// the slot's generation at schedule time, so a handle outliving its event
// can never cancel the slot's next occupant.
struct EventId {
  uint64_t value = 0;
  bool valid() const { return value != 0; }
};

class Simulator {
 public:
  // Move-only type-erased callable with inline storage: the replacement for
  // std::function<void()> on the event hot path. Any callable whose size is
  // at most kInlineSize (and that is nothrow-move-constructible) is stored
  // in place; anything bigger goes through one heap allocation.
  class Handler {
   public:
    // Big enough for the data plane's worst closure (a Cell captured by
    // value plus a couple of pointers) without making slots cache-hostile.
    static constexpr size_t kInlineSize = 96;

    Handler() = default;
    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Handler> &&
                                          std::is_invocable_r_v<void, std::decay_t<F>&>>>
    Handler(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
      using Fn = std::decay_t<F>;
      if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
                    std::is_nothrow_move_constructible_v<Fn>) {
        new (storage_) Fn(std::forward<F>(f));
        ops_ = &kInlineOps<Fn>;
      } else {
        *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
        ops_ = &kHeapOps<Fn>;
      }
    }
    Handler(Handler&& other) noexcept { MoveFrom(other); }
    Handler& operator=(Handler&& other) noexcept {
      if (this != &other) {
        Reset();
        MoveFrom(other);
      }
      return *this;
    }
    Handler(const Handler&) = delete;
    Handler& operator=(const Handler&) = delete;
    ~Handler() { Reset(); }

    explicit operator bool() const { return ops_ != nullptr; }
    void operator()() { ops_->invoke(storage_); }

   private:
    struct Ops {
      void (*invoke)(void* self);
      // Move-constructs `dst` from `src` and destroys `src`.
      void (*relocate)(void* dst, void* src);
      void (*destroy)(void* self);
    };

    template <typename Fn>
    static void InlineInvoke(void* self) {
      (*std::launder(reinterpret_cast<Fn*>(self)))();
    }
    template <typename Fn>
    static void InlineRelocate(void* dst, void* src) {
      Fn* s = std::launder(reinterpret_cast<Fn*>(src));
      new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    template <typename Fn>
    static void InlineDestroy(void* self) {
      std::launder(reinterpret_cast<Fn*>(self))->~Fn();
    }
    template <typename Fn>
    static void HeapInvoke(void* self) {
      (**std::launder(reinterpret_cast<Fn**>(self)))();
    }
    template <typename Fn>
    static void HeapRelocate(void* dst, void* src) {
      *reinterpret_cast<Fn**>(dst) = *std::launder(reinterpret_cast<Fn**>(src));
    }
    template <typename Fn>
    static void HeapDestroy(void* self) {
      delete *std::launder(reinterpret_cast<Fn**>(self));
    }

    template <typename Fn>
    static constexpr Ops kInlineOps{&InlineInvoke<Fn>, &InlineRelocate<Fn>, &InlineDestroy<Fn>};
    template <typename Fn>
    static constexpr Ops kHeapOps{&HeapInvoke<Fn>, &HeapRelocate<Fn>, &HeapDestroy<Fn>};

    void Reset() {
      if (ops_ != nullptr) {
        ops_->destroy(storage_);
        ops_ = nullptr;
      }
    }
    void MoveFrom(Handler& other) {
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineSize];
    const Ops* ops_ = nullptr;
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time.
  TimeNs now() const { return now_; }

  // Schedules `fn` to run at absolute time `t`. Times in the past are clamped
  // to `now` (the event still runs, immediately after current-time events).
  EventId ScheduleAt(TimeNs t, Handler fn);

  // Schedules `fn` to run `d` after the current time (d < 0 clamps to now).
  EventId ScheduleAfter(DurationNs d, Handler fn) { return ScheduleAt(now_ + d, std::move(fn)); }

  // Cancels a pending event. Returns true if the event had not yet run;
  // cancelling an id that already ran (or was already cancelled) returns
  // false and records nothing.
  bool Cancel(EventId id);

  // Runs a single event. Returns false when the queue is empty.
  bool Step();

  // Runs events until the queue drains.
  void Run();

  // Runs events with time <= `t`, then sets the clock to exactly `t`.
  void RunUntil(TimeNs t);

  // Bounded-horizon variant: runs events with time strictly BEFORE `t`,
  // then sets the clock to exactly `t`, leaving events at `t` and later
  // pending. This is the window primitive of conservative parallel
  // simulation (src/sim/shard.h): a shard may execute up to — but not
  // into — the horizon its neighbours' lookahead guarantees safe.
  void RunUntilBefore(TimeNs t);

  // Absolute time of the earliest pending event, or kTimeNever when the
  // queue is empty. Non-const: stale (cancelled) heads are skimmed off.
  TimeNs NextEventTime();

  // Runs events until `pred()` is true (checked after each event) or the
  // queue drains. Returns true if the predicate fired.
  bool RunUntilPredicate(const std::function<bool()>& pred);

  // Number of pending (non-cancelled) events.
  size_t pending() const { return live_; }

  // Total events executed since construction; useful as a progress metric.
  uint64_t executed() const { return executed_; }

 private:
  // A pending event's handler plus the identity needed to validate heap
  // entries and EventIds against slot reuse. seq/gen lead the layout so the
  // pop path's liveness check and the head of the handler's inline storage
  // share a cache line.
  struct Slot {
    uint64_t seq = 0;  // seq of the current occupant; 0 when the slot is free
    uint32_t gen = 1;  // bumped on every release; pins EventId validity
    Handler fn;
  };
  // What the priority queue actually sorts: 24 PODs bytes, no handler.
  struct HeapEntry {
    TimeNs time;
    uint64_t seq;  // tie-breaker: FIFO among same-time events; also the
                   // staleness check against the slot's current occupant
    uint32_t slot;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // The slab is chunked so slots have stable addresses: growing it never
  // relocates live handlers (std::vector growth would move-construct every
  // slot through the Handler vtable).
  static constexpr size_t kChunkShift = 9;  // 512 slots per chunk
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;
  static constexpr size_t kChunkMask = kChunkSize - 1;

  Slot& SlotAt(uint32_t index) {
    return chunks_[index >> kChunkShift][index & kChunkMask];
  }
  const Slot& SlotAt(uint32_t index) const {
    return chunks_[index >> kChunkShift][index & kChunkMask];
  }
  bool EntryLive(const HeapEntry& e) const { return SlotAt(e.slot).seq == e.seq; }
  // Pops entries whose slot was cancelled (and possibly reused) off the
  // head. Returns false when the queue is empty afterwards.
  bool SkimStaleHead();
  uint32_t AcquireSlot();
  void ReleaseSlot(uint32_t index);

  TimeNs now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  size_t live_ = 0;
  size_t slot_count_ = 0;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<uint32_t> free_slots_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> queue_;
};

}  // namespace pegasus::sim

#endif  // PEGASUS_SRC_SIM_EVENT_QUEUE_H_
