// Discrete-event simulation engine.
//
// A Simulator owns the virtual clock and a time-ordered queue of pending
// events. Components schedule closures at absolute or relative times; the
// main loop pops them in (time, insertion-order) order, so runs are fully
// deterministic. Events can be cancelled, which is used for timer-style
// behaviour (retransmission timers, scheduler preemption points).
#ifndef PEGASUS_SRC_SIM_EVENT_QUEUE_H_
#define PEGASUS_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace pegasus::sim {

// Opaque handle for cancelling a scheduled event.
struct EventId {
  uint64_t value = 0;
  bool valid() const { return value != 0; }
};

class Simulator {
 public:
  using Handler = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time.
  TimeNs now() const { return now_; }

  // Schedules `fn` to run at absolute time `t`. Times in the past are clamped
  // to `now` (the event still runs, immediately after current-time events).
  EventId ScheduleAt(TimeNs t, Handler fn);

  // Schedules `fn` to run `d` after the current time (d < 0 clamps to now).
  EventId ScheduleAfter(DurationNs d, Handler fn) { return ScheduleAt(now_ + d, std::move(fn)); }

  // Cancels a pending event. Returns true if the event had not yet run.
  bool Cancel(EventId id);

  // Runs a single event. Returns false when the queue is empty.
  bool Step();

  // Runs events until the queue drains.
  void Run();

  // Runs events with time <= `t`, then sets the clock to exactly `t`.
  void RunUntil(TimeNs t);

  // Runs events until `pred()` is true (checked after each event) or the
  // queue drains. Returns true if the predicate fired.
  bool RunUntilPredicate(const std::function<bool()>& pred);

  // Number of pending (non-cancelled) events.
  size_t pending() const { return queue_.size() - cancelled_.size(); }

  // Total events executed since construction; useful as a progress metric.
  uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    TimeNs time;
    uint64_t seq;  // tie-breaker: FIFO among same-time events
    uint64_t id;
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // Pops cancelled entries off the head of the queue.
  void DiscardCancelledHead();

  TimeNs now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<uint64_t> cancelled_;
};

}  // namespace pegasus::sim

#endif  // PEGASUS_SRC_SIM_EVENT_QUEUE_H_
