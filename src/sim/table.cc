#include "src/sim/table.h"

#include <algorithm>
#include <cstdio>

namespace pegasus::sim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += "| ";
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule += "|";
    rule.append(widths[c] + 2, '-');
  }
  rule += "|\n";
  out += rule;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string Table::Num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::Factor(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", prec, v);
  return buf;
}

std::string Table::Percent(double fraction, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", prec, fraction * 100.0);
  return buf;
}

}  // namespace pegasus::sim
