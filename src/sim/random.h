// Deterministic random-number generation for simulations.
//
// Every stochastic component (workload generators, jitter models, file
// lifetime distributions) draws from an Rng seeded explicitly, so that every
// experiment is reproducible bit-for-bit from its seed.
#ifndef PEGASUS_SRC_SIM_RANDOM_H_
#define PEGASUS_SRC_SIM_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pegasus::sim {

// xoshiro256** generator seeded via SplitMix64. Small, fast, and good enough
// for queueing/workload simulation; not for cryptography.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  // Bounded Pareto sample in [lo, hi] with shape alpha. Used to model file
  // lifetimes and sizes (heavy-tailed, as in the Baker et al. traces).
  double BoundedPareto(double alpha, double lo, double hi);

  // Zipf-distributed rank in [0, n) with skew theta in (0, 1). Used to model
  // file access popularity.
  int64_t Zipf(int64_t n, double theta);

  // Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  // Zipf cache: recomputing the harmonic normaliser is O(n), so cache per (n, theta).
  int64_t zipf_n_ = 0;
  double zipf_theta_ = 0.0;
  double zipf_norm_ = 0.0;
};

}  // namespace pegasus::sim

#endif  // PEGASUS_SRC_SIM_RANDOM_H_
