// A self-rescheduling periodic simulated task.
//
// Wraps the "schedule the next tick from inside this tick" idiom used by
// device scan-out loops and the QoS monitor: a PeriodicTask fires its
// callback every `period` of virtual time until stopped, and cancels its
// pending event on Stop() or destruction so no stale closure outlives the
// owner.
#ifndef PEGASUS_SRC_SIM_PERIODIC_TASK_H_
#define PEGASUS_SRC_SIM_PERIODIC_TASK_H_

#include <functional>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace pegasus::sim {

class PeriodicTask {
 public:
  PeriodicTask(Simulator* sim, DurationNs period, std::function<void()> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  // Arms the task; the first tick fires one period from now. Idempotent.
  void Start();
  // Cancels the pending tick. Idempotent; Start() re-arms.
  void Stop();
  bool running() const { return running_; }
  DurationNs period() const { return period_; }
  int64_t ticks() const { return ticks_; }

 private:
  void Arm();

  Simulator* sim_;
  DurationNs period_;
  std::function<void()> fn_;
  EventId pending_;
  bool running_ = false;
  int64_t ticks_ = 0;
};

}  // namespace pegasus::sim

#endif  // PEGASUS_SRC_SIM_PERIODIC_TASK_H_
