// The device control protocol (§2.2).
//
// "Multimedia devices generate two streams of data on two distinct virtual
// circuits. One is the actual data stream ... The other is a control
// stream; this is a bi-directional low-bandwidth stream that is used to
// control the device and for purposes of synchronization." The Pegasus File
// Server "uses the control stream associated with an incoming data stream to
// generate index information that can later be used to go to specific time
// offsets into a media file".
#ifndef PEGASUS_SRC_DEVICES_CONTROL_H_
#define PEGASUS_SRC_DEVICES_CONTROL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/atm/transport.h"
#include "src/sim/time.h"

namespace pegasus::dev {

enum class ControlType : uint8_t {
  kStart = 1,
  kStop = 2,
  kModeSelect = 3,  // aux = compression mode
  kSyncMark = 4,    // media_ts = source clock announcement
  kIndexMark = 5,   // media_ts at byte offset aux (storage indexing)
  kSeek = 6,        // media_ts = target position
};

struct ControlMessage {
  ControlType type = ControlType::kStart;
  uint32_t stream_id = 0;
  sim::TimeNs media_ts = 0;
  int64_t aux = 0;

  std::vector<uint8_t> Serialize() const;
  static std::optional<ControlMessage> Parse(const std::vector<uint8_t>& bytes);
};

// A bidirectional control stream endpoint bound to one VCI pair of a message
// transport. Low bandwidth by construction: one small message at a time.
class ControlChannel {
 public:
  using Handler = std::function<void(const ControlMessage&)>;

  // `send_vci`: where our messages go; `receive_vci`: where the peer's
  // arrive on our transport.
  ControlChannel(atm::MessageTransport* transport, atm::Vci send_vci, atm::Vci receive_vci);

  void Send(const ControlMessage& message);
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  int64_t sent() const { return sent_; }
  int64_t received() const { return received_; }

 private:
  atm::MessageTransport* transport_;
  atm::Vci send_vci_;
  Handler handler_;
  int64_t sent_ = 0;
  int64_t received_ = 0;
};

}  // namespace pegasus::dev

#endif  // PEGASUS_SRC_DEVICES_CONTROL_H_
