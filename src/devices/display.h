// The ATM display (§2.1, Figure 3).
//
// "The ATM display implements a single primitive, that of displaying
// arriving pixel tiles on incoming virtual circuits to windows on the
// screen. The virtual-circuit identifier is used as an index into a table of
// window descriptors; each window descriptor has an x and y offset ... and
// clipping information. By manipulation of these contexts, a window manager
// can control which virtual channel, and thus which process, can access the
// different pixels of the screen."
//
// Tiles are fixed-size bit-blits, so graphics and video are the same thing
// to the display; the window system's multiplexing code "can largely
// disappear" — the descriptor table *is* the multiplexer. The WindowManager
// below moves/resizes/raises windows purely by editing descriptors, never by
// copying pixels, which experiment E14 quantifies.
#ifndef PEGASUS_SRC_DEVICES_DISPLAY_H_
#define PEGASUS_SRC_DEVICES_DISPLAY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/atm/aal5.h"
#include "src/atm/endpoint.h"
#include "src/devices/compression.h"
#include "src/devices/tile.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace pegasus::dev {

// A window descriptor: where a virtual circuit's tiles may land.
struct WindowDescriptor {
  int x = 0;  // screen position of the window's origin
  int y = 0;
  int width = 0;  // clipping rectangle (window size)
  int height = 0;
  int z = 0;        // stacking order; higher is nearer the viewer
  bool visible = true;  // iconised windows are invisible but keep their VC
};

class AtmDisplay {
 public:
  // Invoked for every tile packet rendered; gives synchronisation code the
  // media timestamp of what just hit the screen (E13/lip-sync).
  using PacketCallback =
      std::function<void(atm::Vci vci, uint32_t frame_no, sim::TimeNs capture_ts)>;

  AtmDisplay(sim::Simulator* sim, atm::Endpoint* endpoint, int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  void set_packet_callback(PacketCallback cb) { packet_cb_ = std::move(cb); }

  // --- Window-descriptor table (the window manager's interface) ---
  void SetDescriptor(atm::Vci vci, const WindowDescriptor& desc);
  bool RemoveDescriptor(atm::Vci vci);
  const WindowDescriptor* GetDescriptor(atm::Vci vci) const;
  int64_t descriptor_updates() const { return descriptor_updates_; }

  // --- screen state ---
  uint8_t PixelAt(int x, int y) const {
    return framebuffer_[static_cast<size_t>(y) * width_ + x];
  }
  // VCI owning this pixel (kVciUnassigned = background).
  atm::Vci OwnerAt(int x, int y) const {
    return owner_[static_cast<size_t>(y) * width_ + x];
  }

  // --- statistics ---
  int64_t tiles_blitted() const { return tiles_blitted_; }
  int64_t tiles_clipped() const { return tiles_clipped_; }
  int64_t pixels_drawn() const { return pixels_drawn_; }
  uint64_t decode_errors() const { return decode_errors_; }
  // Capture-to-blit latency of every tile packet (ns) — the E01 metric.
  const sim::Summary& tile_latency() const { return tile_latency_; }
  // Latency between a frame's capture and its *last* tile hitting the
  // screen, per completed frame.
  const sim::Summary& frame_completion_latency() const { return frame_completion_latency_; }
  uint32_t frames_completed() const { return frames_completed_; }

 private:
  void OnCell(const atm::Cell& cell);
  void OnPacket(atm::Vci vci, const TilePacket& packet);
  void RecomputeOwnership();

  sim::Simulator* sim_;
  atm::Endpoint* endpoint_;
  int width_;
  int height_;
  std::vector<uint8_t> framebuffer_;
  std::vector<atm::Vci> owner_;
  std::map<atm::Vci, WindowDescriptor> descriptors_;
  std::map<atm::Vci, atm::Aal5Reassembler> reassemblers_;
  // Per-VCI frame tracking for completion latency.
  struct FrameTrack {
    uint32_t frame_no = 0;
    sim::TimeNs capture_ts = 0;
    bool any = false;
  };
  std::map<atm::Vci, FrameTrack> frame_track_;
  PacketCallback packet_cb_;

  int64_t descriptor_updates_ = 0;
  int64_t tiles_blitted_ = 0;
  int64_t tiles_clipped_ = 0;
  int64_t pixels_drawn_ = 0;
  uint64_t decode_errors_ = 0;
  sim::Summary tile_latency_;
  sim::Summary frame_completion_latency_;
  uint32_t frames_completed_ = 0;
};

// The window manager: a control process that owns the descriptor table. All
// operations are descriptor edits; no pixel ever moves through it.
class WindowManager {
 public:
  explicit WindowManager(AtmDisplay* display);

  // Creates a window for `vci` at (x, y) of size w*h, on top.
  void CreateWindow(atm::Vci vci, int x, int y, int w, int h);
  bool MoveWindow(atm::Vci vci, int x, int y);
  bool ResizeWindow(atm::Vci vci, int w, int h);
  bool RaiseWindow(atm::Vci vci);
  bool LowerWindow(atm::Vci vci);
  bool IconifyWindow(atm::Vci vci);
  bool RestoreWindow(atm::Vci vci);
  bool DestroyWindow(atm::Vci vci);

  int64_t operations() const { return operations_; }

 private:
  AtmDisplay* display_;
  int next_z_ = 1;
  int64_t operations_ = 0;
};

}  // namespace pegasus::dev

#endif  // PEGASUS_SRC_DEVICES_DISPLAY_H_
