// Video tiles and their wire format (§2.1).
//
// The ATM camera digitises scan lines; "when eight lines have been buffered,
// they are encoded as tiles, rectangles of 8x8 pixels. A number of tiles are
// packed into the payload of an AAL5 frame together with a trailer that
// provides the x and y coordinates of the tiles with respect to the video
// frame, and a time stamp that identifies the frame". Tiles double as
// fixed-size bit-blit operations at the display, which is what unifies video
// and graphics (§2.1, Figure 3).
#ifndef PEGASUS_SRC_DEVICES_TILE_H_
#define PEGASUS_SRC_DEVICES_TILE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/sim/time.h"

namespace pegasus::dev {

inline constexpr int kTileDim = 8;
inline constexpr int kTilePixels = kTileDim * kTileDim;

// One 8x8 tile of 8-bit pixels. `data` holds raw pixels (64 bytes) or a
// compressed representation (see compression.h).
struct Tile {
  uint16_t x = 0;  // pixel coordinates of the top-left corner in the frame
  uint16_t y = 0;
  bool compressed = false;
  std::vector<uint8_t> data;
};

// A group of tiles sharing a frame timestamp, carried in one AAL5 frame.
struct TilePacket {
  uint32_t frame_no = 0;
  sim::TimeNs capture_ts = 0;  // the trailer's time stamp
  std::vector<Tile> tiles;

  std::vector<uint8_t> Serialize() const;
  static std::optional<TilePacket> Parse(const std::vector<uint8_t>& bytes);
};

// A full video frame buffer (8-bit grey), row-major.
struct Frame {
  int width = 0;
  int height = 0;
  uint32_t frame_no = 0;
  sim::TimeNs capture_ts = 0;
  std::vector<uint8_t> pixels;

  Frame() = default;
  Frame(int w, int h) : width(w), height(h), pixels(static_cast<size_t>(w) * h, 0) {}
  uint8_t at(int px, int py) const { return pixels[static_cast<size_t>(py) * width + px]; }
  void set(int px, int py, uint8_t v) { pixels[static_cast<size_t>(py) * width + px] = v; }
  // Copies the 8x8 region at (tx, ty) into a raw tile.
  Tile ExtractTile(int tx, int ty) const;
  // Blits a raw (uncompressed) tile into the frame, clipping at the edges.
  void BlitTile(const Tile& tile);
};

}  // namespace pegasus::dev

#endif  // PEGASUS_SRC_DEVICES_TILE_H_
