#include "src/devices/sync.h"

#include <cmath>

namespace pegasus::dev {

PlaybackController::PlaybackController(sim::Simulator* sim, Options options)
    : sim_(sim), options_(options) {}

int PlaybackController::RegisterStream(const std::string& name) {
  streams_.push_back(Stream{name, {}, 1.0});
  return static_cast<int>(streams_.size()) - 1;
}

void PlaybackController::SetEffectiveRate(int stream, double fraction) {
  if (stream < 0 || stream >= static_cast<int>(streams_.size())) {
    return;
  }
  streams_[static_cast<size_t>(stream)].effective_rate = fraction;
}

double PlaybackController::EffectiveRate(int stream) const {
  if (stream < 0 || stream >= static_cast<int>(streams_.size())) {
    return 1.0;
  }
  return streams_[static_cast<size_t>(stream)].effective_rate;
}

void PlaybackController::OnArrival(int stream, sim::TimeNs media_ts) {
  if (options_.mode == Mode::kImmediate) {
    Playout(stream, media_ts);
    return;
  }
  if (!clock_fixed_) {
    clock_fixed_ = true;
    base_ts_ = media_ts;
    t0_ = sim_->now() + options_.margin;
  }
  const sim::TimeNs due = t0_ + (media_ts - base_ts_);
  if (sim_->now() >= due) {
    ++late_arrivals_;
    Playout(stream, media_ts);
    return;
  }
  sim_->ScheduleAt(due, [this, stream, media_ts]() { Playout(stream, media_ts); });
}

void PlaybackController::Playout(int stream, sim::TimeNs media_ts) {
  const sim::TimeNs now = sim_->now();
  ++playouts_;
  Stream& s = streams_[static_cast<size_t>(stream)];
  if (s.effective_rate < 1.0) {
    ++degraded_playouts_;
  }
  s.history.emplace_back(media_ts, now);
  while (s.history.size() > 256) {
    s.history.pop_front();
  }
  // Skew against the nearest-in-media-time sample of every other stream:
  // skew = (playout - media_ts) difference between the streams.
  for (size_t other = 0; other < streams_.size(); ++other) {
    if (other == static_cast<size_t>(stream)) {
      continue;
    }
    const Stream& o = streams_[other];
    sim::TimeNs best_gap = options_.skew_match_window + 1;
    sim::TimeNs best_skew = 0;
    for (const auto& [ots, oplay] : o.history) {
      const sim::TimeNs gap = std::llabs(ots - media_ts);
      if (gap < best_gap) {
        best_gap = gap;
        best_skew = (now - media_ts) - (oplay - ots);
      }
    }
    if (best_gap <= options_.skew_match_window) {
      skew_.Add(static_cast<double>(std::llabs(best_skew)));
    }
  }
  if (playout_cb_) {
    playout_cb_(stream, media_ts, now);
  }
}

}  // namespace pegasus::dev
