#include "src/devices/control.h"

#include "src/atm/wire.h"

namespace pegasus::dev {

std::vector<uint8_t> ControlMessage::Serialize() const {
  atm::WireWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU32(stream_id);
  w.PutI64(media_ts);
  w.PutI64(aux);
  return w.Take();
}

std::optional<ControlMessage> ControlMessage::Parse(const std::vector<uint8_t>& bytes) {
  atm::WireReader r(bytes);
  ControlMessage msg;
  msg.type = static_cast<ControlType>(r.GetU8());
  msg.stream_id = r.GetU32();
  msg.media_ts = r.GetI64();
  msg.aux = r.GetI64();
  if (!r.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  return msg;
}

ControlChannel::ControlChannel(atm::MessageTransport* transport, atm::Vci send_vci,
                               atm::Vci receive_vci)
    : transport_(transport), send_vci_(send_vci) {
  transport_->SetHandler(receive_vci,
                         [this](atm::Vci, std::vector<uint8_t> bytes, sim::TimeNs) {
                           auto msg = ControlMessage::Parse(bytes);
                           if (msg.has_value()) {
                             ++received_;
                             if (handler_) {
                               handler_(*msg);
                             }
                           }
                         });
}

void ControlChannel::Send(const ControlMessage& message) {
  ++sent_;
  transport_->Send(send_vci_, message.Serialize());
}

}  // namespace pegasus::dev
