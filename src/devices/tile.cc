#include "src/devices/tile.h"

#include <algorithm>

#include "src/atm/wire.h"

namespace pegasus::dev {

std::vector<uint8_t> TilePacket::Serialize() const {
  atm::WireWriter w;
  // Tile bodies first; the trailer (coordinates + timestamp) follows, as on
  // the real camera where the trailer closes the AAL5 payload.
  w.PutU16(static_cast<uint16_t>(tiles.size()));
  for (const Tile& t : tiles) {
    w.PutU8(t.compressed ? 1 : 0);
    w.PutBytes(t.data);
  }
  for (const Tile& t : tiles) {
    w.PutU16(t.x);
    w.PutU16(t.y);
  }
  w.PutU32(frame_no);
  w.PutI64(capture_ts);
  return w.Take();
}

std::optional<TilePacket> TilePacket::Parse(const std::vector<uint8_t>& bytes) {
  atm::WireReader r(bytes);
  TilePacket packet;
  const uint16_t count = r.GetU16();
  packet.tiles.resize(count);
  for (uint16_t i = 0; i < count; ++i) {
    packet.tiles[i].compressed = r.GetU8() != 0;
    packet.tiles[i].data = r.GetBytes();
  }
  for (uint16_t i = 0; i < count; ++i) {
    packet.tiles[i].x = r.GetU16();
    packet.tiles[i].y = r.GetU16();
  }
  packet.frame_no = r.GetU32();
  packet.capture_ts = r.GetI64();
  if (!r.ok()) {
    return std::nullopt;
  }
  return packet;
}

Tile Frame::ExtractTile(int tx, int ty) const {
  Tile tile;
  tile.x = static_cast<uint16_t>(tx);
  tile.y = static_cast<uint16_t>(ty);
  tile.data.resize(kTilePixels, 0);
  for (int row = 0; row < kTileDim; ++row) {
    for (int col = 0; col < kTileDim; ++col) {
      const int px = tx + col;
      const int py = ty + row;
      if (px < width && py < height) {
        tile.data[static_cast<size_t>(row) * kTileDim + col] = at(px, py);
      }
    }
  }
  return tile;
}

void Frame::BlitTile(const Tile& tile) {
  for (int row = 0; row < kTileDim; ++row) {
    for (int col = 0; col < kTileDim; ++col) {
      const int px = tile.x + col;
      const int py = tile.y + row;
      if (px >= 0 && px < width && py >= 0 && py < height) {
        set(px, py, tile.data[static_cast<size_t>(row) * kTileDim + col]);
      }
    }
  }
}

}  // namespace pegasus::dev
