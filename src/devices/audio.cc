#include "src/devices/audio.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace pegasus::dev {

AudioCapture::AudioCapture(sim::Simulator* sim, atm::Endpoint* endpoint, int sample_rate)
    : sim_(sim), endpoint_(endpoint), sample_rate_(sample_rate) {}

void AudioCapture::Start(atm::Vci vci) {
  if (running_) {
    return;
  }
  vci_ = vci;
  running_ = true;
  EmitCell();
}

void AudioCapture::Stop() { running_ = false; }

int64_t AudioCapture::nominal_bps() const {
  return atm::kCellSize * 8 * sim::Seconds(1) / CellPeriod();
}

sim::DurationNs AudioCapture::CellInterval() const {
  if (pace_bps_ <= 0) {
    return CellPeriod();
  }
  return std::max(CellPeriod(), sim::TransmissionTime(atm::kCellSize, pace_bps_));
}

void AudioCapture::EmitCell() {
  if (!running_) {
    return;
  }
  const sim::DurationNs interval = CellInterval();
  const sim::DurationNs cell_period = CellPeriod();
  // Paced below the sample cadence, the ADC decimates: samples captured
  // since the last shipped cell that do not fit are skipped, not queued (an
  // ever-growing backlog would just be deferred loss).
  const uint64_t skipped =
      interval > cell_period
          ? static_cast<uint64_t>((interval - cell_period) * sample_rate_ / sim::Seconds(1))
          : 0;
  samples_decimated_ += static_cast<int64_t>(skipped);
  atm::Cell cell;
  cell.vci = vci_;
  cell.created_at = sim_->now();
  cell.seq = static_cast<uint64_t>(cells_sent_);
  cell.end_of_frame = true;  // each audio cell stands alone
  // Payload: 8-byte capture timestamp + 40 samples of a 440 Hz tone.
  const sim::TimeNs ts = sim_->now();
  std::memcpy(cell.payload.data(), &ts, 8);
  for (int i = 0; i < kSamplesPerAudioCell; ++i) {
    const double t = static_cast<double>(sample_pos_ + static_cast<uint64_t>(i)) /
                     static_cast<double>(sample_rate_);
    cell.payload[static_cast<size_t>(8 + i)] =
        static_cast<uint8_t>(128.0 + 100.0 * std::sin(2.0 * M_PI * 440.0 * t));
  }
  sample_pos_ += kSamplesPerAudioCell + skipped;
  ++cells_sent_;
  endpoint_->SendCell(cell);
  sim_->ScheduleAfter(interval, [this]() { EmitCell(); });
}

AudioPlayback::AudioPlayback(sim::Simulator* sim, atm::Endpoint* endpoint, int sample_rate,
                             sim::DurationNs buffer_depth)
    : sim_(sim),
      endpoint_(endpoint),
      sample_rate_(sample_rate),
      buffer_depth_(buffer_depth),
      cell_period_(sim::Seconds(1) * kSamplesPerAudioCell / sample_rate) {
  endpoint_->set_cell_handler([this](const atm::Cell& cell) { OnCell(cell); });
}

void AudioPlayback::OnCell(const atm::Cell& cell) {
  ++cells_received_;
  sim::TimeNs ts = 0;
  std::memcpy(&ts, cell.payload.data(), 8);
  buffer_.push_back(ts);
  if (!playing_) {
    const auto needed = static_cast<size_t>(buffer_depth_ / cell_period_);
    if (buffer_.size() > needed) {
      playing_ = true;
      next_tick_ = sim_->now();
      Tick();
    }
  }
}

void AudioPlayback::Tick() {
  if (!playing_) {
    return;
  }
  const sim::TimeNs ideal = next_tick_;
  jitter_.Add(static_cast<double>(std::abs(sim_->now() - ideal)));
  if (buffer_.empty()) {
    ++underruns_;
  } else {
    const sim::TimeNs capture_ts = buffer_.front();
    buffer_.pop_front();
    ++cells_played_;
    latency_.Add(static_cast<double>(sim_->now() - capture_ts));
    if (playout_cb_) {
      playout_cb_(capture_ts, sim_->now());
    }
  }
  next_tick_ += cell_period_;
  sim_->ScheduleAt(next_tick_, [this]() { Tick(); });
}

}  // namespace pegasus::dev
