#include "src/devices/processing.h"

#include <algorithm>

namespace pegasus::dev {

TileTransform InvertTransform() {
  return [](std::vector<uint8_t>& pixels) {
    for (uint8_t& p : pixels) {
      p = static_cast<uint8_t>(255 - p);
    }
  };
}

TileTransform BrightnessTransform(int delta) {
  return [delta](std::vector<uint8_t>& pixels) {
    for (uint8_t& p : pixels) {
      p = static_cast<uint8_t>(std::clamp(static_cast<int>(p) + delta, 0, 255));
    }
  };
}

TileTransform BlurTransform() {
  return [](std::vector<uint8_t>& pixels) {
    std::vector<uint8_t> src = pixels;
    auto at = [&src](int x, int y) {
      x = std::clamp(x, 0, kTileDim - 1);
      y = std::clamp(y, 0, kTileDim - 1);
      return static_cast<int>(src[static_cast<size_t>(y) * kTileDim + x]);
    };
    for (int y = 0; y < kTileDim; ++y) {
      for (int x = 0; x < kTileDim; ++x) {
        int sum = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            sum += at(x + dx, y + dy);
          }
        }
        pixels[static_cast<size_t>(y) * kTileDim + x] = static_cast<uint8_t>(sum / 9);
      }
    }
  };
}

TileTransform EdgeTransform() {
  return [](std::vector<uint8_t>& pixels) {
    std::vector<uint8_t> src = pixels;
    auto at = [&src](int x, int y) {
      x = std::clamp(x, 0, kTileDim - 1);
      y = std::clamp(y, 0, kTileDim - 1);
      return static_cast<int>(src[static_cast<size_t>(y) * kTileDim + x]);
    };
    for (int y = 0; y < kTileDim; ++y) {
      for (int x = 0; x < kTileDim; ++x) {
        const int gx = at(x + 1, y - 1) + 2 * at(x + 1, y) + at(x + 1, y + 1) -
                       at(x - 1, y - 1) - 2 * at(x - 1, y) - at(x - 1, y + 1);
        const int gy = at(x - 1, y + 1) + 2 * at(x, y + 1) + at(x + 1, y + 1) -
                       at(x - 1, y - 1) - 2 * at(x, y - 1) - at(x + 1, y - 1);
        pixels[static_cast<size_t>(y) * kTileDim + x] =
            static_cast<uint8_t>(std::clamp((std::abs(gx) + std::abs(gy)) / 4, 0, 255));
      }
    }
  };
}

TileProcessor::TileProcessor(sim::Simulator* sim, atm::MessageTransport* transport,
                             atm::Vci in_vci, atm::Vci out_vci, Config config)
    : sim_(sim), transport_(transport), out_vci_(out_vci), config_(std::move(config)) {
  transport_->SetHandler(in_vci, [this](atm::Vci, std::vector<uint8_t> bytes, sim::TimeNs) {
    OnPacket(std::move(bytes));
  });
}

void TileProcessor::OnPacket(std::vector<uint8_t> bytes) {
  auto packet = TilePacket::Parse(bytes);
  if (!packet.has_value()) {
    ++decode_errors_;
    return;
  }
  // Queue on the serial processing core.
  const sim::TimeNs arrived = sim_->now();
  const sim::TimeNs start = std::max(arrived, core_free_at_);
  const sim::DurationNs work =
      config_.per_tile_cost * static_cast<int64_t>(packet->tiles.size());
  core_free_at_ = start + work;

  sim_->ScheduleAt(core_free_at_, [this, arrived, packet = std::move(*packet)]() mutable {
    for (Tile& tile : packet.tiles) {
      if (!DecompressTileInPlace(&tile)) {
        ++decode_errors_;
        continue;
      }
      if (config_.transform) {
        config_.transform(tile.data);
      }
      CompressTileInPlace(&tile, config_.output_compression, config_.jpeg_quality);
      ++tiles_processed_;
    }
    ++packets_processed_;
    latency_.Add(static_cast<double>(sim_->now() - arrived));
    // Timestamps pass through untouched: downstream latency measurements see
    // the true capture-to-screen time including this hop.
    transport_->Send(out_vci_, packet.Serialize());
  });
}

}  // namespace pegasus::dev
