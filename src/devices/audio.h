// The ATM DSP/audio node (§2.1).
//
// "There is an ATM DSP node which combines digital signal processing and
// audio input and output. This device contains DACs and ADCs and packs and
// unpacks audio samples into ATM cells. Each such cell also contains a time
// stamp." Audio cells are raw cells (no AAL5): 8 payload bytes of timestamp
// plus 40 one-byte samples. At 44.1 kHz a cell leaves every ~907 us, which
// is why audio is "much more susceptible to jitter" — the playback side
// smooths arrival jitter with a configurable buffer and counts underruns.
#ifndef PEGASUS_SRC_DEVICES_AUDIO_H_
#define PEGASUS_SRC_DEVICES_AUDIO_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/atm/endpoint.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace pegasus::dev {

inline constexpr int kSamplesPerAudioCell = 40;

// ADC half: generates a deterministic tone, packs samples into timestamped
// cells at the exact sample cadence.
class AudioCapture {
 public:
  AudioCapture(sim::Simulator* sim, atm::Endpoint* endpoint, int sample_rate = 44'100);

  void Start(atm::Vci vci);
  void Stop();
  bool running() const { return running_; }

  int sample_rate() const { return sample_rate_; }
  int64_t cells_sent() const { return cells_sent_; }

  // Re-shapes the outgoing cell stream to `bps` wire bits per second (0 =
  // unpaced, the exact sample cadence). Stream admission binds this to the
  // granted network bandwidth, exactly as it paces cameras: below the
  // nominal rate the ADC decimates — cells leave at the paced interval and
  // the skipped samples are counted.
  void set_pace_bps(int64_t bps) { pace_bps_ = bps; }
  int64_t pace_bps() const { return pace_bps_; }
  // Wire bits per second of the unpaced cell stream.
  int64_t nominal_bps() const;
  // Samples skipped by pacing-induced decimation, as whole-cell equivalents.
  int64_t cells_decimated() const { return samples_decimated_ / kSamplesPerAudioCell; }
  int64_t samples_decimated() const { return samples_decimated_; }

 private:
  void EmitCell();
  // One cell's worth of samples at the sample cadence.
  sim::DurationNs CellPeriod() const {
    return sim::Seconds(1) * kSamplesPerAudioCell / sample_rate_;
  }
  // Interval between cells under the current pacing.
  sim::DurationNs CellInterval() const;

  sim::Simulator* sim_;
  atm::Endpoint* endpoint_;
  int sample_rate_;
  atm::Vci vci_ = atm::kVciUnassigned;
  bool running_ = false;
  uint64_t sample_pos_ = 0;
  int64_t cells_sent_ = 0;
  int64_t pace_bps_ = 0;
  int64_t samples_decimated_ = 0;
};

// DAC half: buffers arriving cells, starts the play-out clock once
// `buffer_depth` of audio is queued, then consumes one cell per cell period.
// A tick with no data is an underrun (an audible click).
class AudioPlayback {
 public:
  // Invoked at each play-out with the cell's capture timestamp; used by the
  // synchronisation controller (E13).
  using PlayoutCallback = std::function<void(sim::TimeNs capture_ts, sim::TimeNs playout_ts)>;

  AudioPlayback(sim::Simulator* sim, atm::Endpoint* endpoint, int sample_rate = 44'100,
                sim::DurationNs buffer_depth = sim::Milliseconds(10));

  void set_playout_callback(PlayoutCallback cb) { playout_cb_ = std::move(cb); }

  int64_t cells_received() const { return cells_received_; }
  int64_t cells_played() const { return cells_played_; }
  int64_t underruns() const { return underruns_; }
  // Capture-to-playout latency per cell, ns.
  const sim::Summary& end_to_end_latency() const { return latency_; }
  // |actual - ideal| play-out time per cell, ns: residual jitter after the
  // buffer. Ideal spacing is exactly one cell period.
  const sim::Summary& playout_jitter() const { return jitter_; }

 private:
  void OnCell(const atm::Cell& cell);
  void Tick();

  sim::Simulator* sim_;
  atm::Endpoint* endpoint_;
  int sample_rate_;
  sim::DurationNs buffer_depth_;
  sim::DurationNs cell_period_;
  std::deque<sim::TimeNs> buffer_;  // capture timestamps of queued cells
  bool playing_ = false;
  sim::TimeNs next_tick_ = 0;
  PlayoutCallback playout_cb_;
  int64_t cells_received_ = 0;
  int64_t cells_played_ = 0;
  int64_t underruns_ = 0;
  sim::Summary latency_;
  sim::Summary jitter_;
};

}  // namespace pegasus::dev

#endif  // PEGASUS_SRC_DEVICES_AUDIO_H_
