// Stream synchronisation at the rendering end (§2.2).
//
// "A local process will merge the two control streams into a combined
// control stream for the playback control process at the rendering end. The
// playback control process is then responsible for the synchronization of
// the play-out of the various streams arriving at it, based on the source
// synchronization information from the remote manager(s) and data arrival
// events."
//
// The PlaybackController maps every stream's media timestamps onto one
// play-out clock: the first arrival fixes play-out time T0 = arrival +
// margin, and media timestamp t plays at T0 + (t - t0). Streams that arrive
// early wait; late data plays immediately and is counted. The measured
// inter-stream skew (E13) compares this against unsynchronised immediate
// play-out.
#ifndef PEGASUS_SRC_DEVICES_SYNC_H_
#define PEGASUS_SRC_DEVICES_SYNC_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"

namespace pegasus::dev {

class PlaybackController {
 public:
  enum class Mode {
    kSynchronized,  // common play-out clock with a jitter margin
    kImmediate,     // play on arrival (the unsynchronised baseline)
  };

  struct Options {
    Mode mode = Mode::kSynchronized;
    // Buffering margin added to the first arrival; absorbs jitter and
    // inter-stream latency differences.
    sim::DurationNs margin = sim::Milliseconds(40);
    // How far apart two streams' samples may be and still be compared for
    // skew measurement.
    sim::DurationNs skew_match_window = sim::Milliseconds(100);
  };

  using PlayoutCallback =
      std::function<void(int stream, sim::TimeNs media_ts, sim::TimeNs playout_ts)>;

  PlaybackController(sim::Simulator* sim, Options options);

  // Registers a stream; returns its id.
  int RegisterStream(const std::string& name);
  int stream_count() const { return static_cast<int>(streams_.size()); }

  // Data arrival: media for `media_ts` is ready to render on `stream`.
  void OnArrival(int stream, sim::TimeNs media_ts);

  void set_playout_callback(PlayoutCallback cb) { playout_cb_ = std::move(cb); }

  // --- cross-layer degradation visibility ---
  // The fraction of a stream's nominal rate currently granted (1.0 = full).
  // Stream degradation callbacks push renegotiated rates here so the
  // synchronisation logic and its clients see A/V degradation coherently:
  // every play-out is counted against the rate in force at that instant.
  void SetEffectiveRate(int stream, double fraction);
  double EffectiveRate(int stream) const;
  // Play-outs that happened while the stream was degraded (rate < 1).
  int64_t degraded_playouts() const { return degraded_playouts_; }

  // --- measurements ---
  // Cross-stream play-out skew samples (|ns|), matched by media timestamp.
  const sim::Summary& skew() const { return skew_; }
  // Arrivals after their scheduled play-out time.
  int64_t late_arrivals() const { return late_arrivals_; }
  int64_t playouts() const { return playouts_; }

 private:
  struct Stream {
    std::string name;
    // Recent playouts (media_ts, playout_ts) for skew matching.
    std::deque<std::pair<sim::TimeNs, sim::TimeNs>> history;
    // Granted fraction of the stream's nominal rate (degradation).
    double effective_rate = 1.0;
  };

  void Playout(int stream, sim::TimeNs media_ts);

  sim::Simulator* sim_;
  Options options_;
  std::vector<Stream> streams_;
  bool clock_fixed_ = false;
  sim::TimeNs t0_ = 0;        // play-out wall time of base_ts_
  sim::TimeNs base_ts_ = 0;   // media timestamp anchored to t0_
  PlayoutCallback playout_cb_;
  sim::Summary skew_;
  int64_t late_arrivals_ = 0;
  int64_t playouts_ = 0;
  int64_t degraded_playouts_ = 0;
};

}  // namespace pegasus::dev

#endif  // PEGASUS_SRC_DEVICES_SYNC_H_
