// In-network media processing (§1, §2.3).
//
// The paper's thesis: audio and video must not be second-class media "on
// which the only operations are capture, storage and rendering, but media
// that can be processed — analysed, filtered, modified — just like text and
// data". The multimedia compute server of Figure 4 exists for exactly this.
// A TileProcessor sits on a virtual circuit, decodes arriving tile packets,
// applies a per-tile transform, and re-emits the stream with its timestamps
// intact — so processed video stays real-time and measurable end to end.
#ifndef PEGASUS_SRC_DEVICES_PROCESSING_H_
#define PEGASUS_SRC_DEVICES_PROCESSING_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/atm/transport.h"
#include "src/devices/compression.h"
#include "src/devices/tile.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace pegasus::dev {

// A transform over one raw 8x8 tile (64 pixels, in place).
using TileTransform = std::function<void(std::vector<uint8_t>& pixels)>;

// Stock transforms for examples and tests.
TileTransform InvertTransform();
TileTransform BrightnessTransform(int delta);
// 3x3 box blur within the tile (tile borders clamp).
TileTransform BlurTransform();
// Sobel edge magnitude — the "analysis" of the paper's claim.
TileTransform EdgeTransform();

class TileProcessor {
 public:
  struct Config {
    TileTransform transform;
    // Simulated CPU cost per tile (a DSP or compute-server core).
    sim::DurationNs per_tile_cost = sim::Microseconds(10);
    // Re-compress output tiles (kRaw forwards them uncompressed).
    CompressionMode output_compression = CompressionMode::kRaw;
    int jpeg_quality = 60;
  };

  // Processes packets arriving on `in_vci` of `transport` and emits them on
  // `out_vci`. The transport must outlive the processor.
  TileProcessor(sim::Simulator* sim, atm::MessageTransport* transport, atm::Vci in_vci,
                atm::Vci out_vci, Config config);

  // True when every queued packet has finished processing: the serial core
  // schedules each completion at the time it will be free, so strictly past
  // that instant no pending simulator event references this processor.
  bool drained_at(sim::TimeNs now) const { return now > core_free_at_; }

  int64_t packets_processed() const { return packets_processed_; }
  int64_t tiles_processed() const { return tiles_processed_; }
  uint64_t decode_errors() const { return decode_errors_; }
  // Residence time of a packet inside the processor (queueing + compute).
  const sim::Summary& processing_latency() const { return latency_; }

 private:
  void OnPacket(std::vector<uint8_t> bytes);

  sim::Simulator* sim_;
  atm::MessageTransport* transport_;
  atm::Vci out_vci_;
  Config config_;
  // The processing core is serial: packets queue while it is busy.
  sim::TimeNs core_free_at_ = 0;
  int64_t packets_processed_ = 0;
  int64_t tiles_processed_ = 0;
  uint64_t decode_errors_ = 0;
  sim::Summary latency_;
};

}  // namespace pegasus::dev

#endif  // PEGASUS_SRC_DEVICES_PROCESSING_H_
