// Motion-JPEG-style tile compression (§2.1).
//
// "Cameras can be equipped with one or more compression devices. ...
// Currently, both raw video and motion JPEG are supported." This is a real
// (if miniature) transform codec over 8x8 tiles: DCT-II, quantisation with
// the JPEG luminance table scaled by a quality factor, zig-zag scan and
// zero run-length coding. It is lossy and content-dependent, like the real
// thing, so bandwidth experiments (E02) measure honest compressed sizes.
#ifndef PEGASUS_SRC_DEVICES_COMPRESSION_H_
#define PEGASUS_SRC_DEVICES_COMPRESSION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/devices/tile.h"

namespace pegasus::dev {

enum class CompressionMode : uint8_t {
  kRaw = 0,
  kMotionJpeg = 1,
};

// Compresses 64 raw pixels into a variable-length byte string. `quality` in
// [1, 100]; higher is better fidelity and larger output.
std::vector<uint8_t> CompressTile(const std::vector<uint8_t>& pixels, int quality);

// Inverse of CompressTile. Returns 64 pixels, or nullopt on malformed input.
std::optional<std::vector<uint8_t>> DecompressTile(const std::vector<uint8_t>& data);

// Applies the camera's configured compression to a raw tile (in place).
void CompressTileInPlace(Tile* tile, CompressionMode mode, int quality);
// Ensures a tile is raw pixels, decompressing if necessary. Returns false on
// corrupt data (the AAL5 CRC normally catches this first).
bool DecompressTileInPlace(Tile* tile);

}  // namespace pegasus::dev

#endif  // PEGASUS_SRC_DEVICES_COMPRESSION_H_
