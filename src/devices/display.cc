#include "src/devices/display.h"

#include <algorithm>

namespace pegasus::dev {

AtmDisplay::AtmDisplay(sim::Simulator* sim, atm::Endpoint* endpoint, int width, int height)
    : sim_(sim),
      endpoint_(endpoint),
      width_(width),
      height_(height),
      framebuffer_(static_cast<size_t>(width) * height, 0),
      owner_(static_cast<size_t>(width) * height, atm::kVciUnassigned) {
  endpoint_->set_cell_handler([this](const atm::Cell& cell) { OnCell(cell); });
}

void AtmDisplay::SetDescriptor(atm::Vci vci, const WindowDescriptor& desc) {
  descriptors_[vci] = desc;
  ++descriptor_updates_;
  RecomputeOwnership();
}

bool AtmDisplay::RemoveDescriptor(atm::Vci vci) {
  if (descriptors_.erase(vci) == 0) {
    return false;
  }
  ++descriptor_updates_;
  RecomputeOwnership();
  return true;
}

const WindowDescriptor* AtmDisplay::GetDescriptor(atm::Vci vci) const {
  auto it = descriptors_.find(vci);
  return it == descriptors_.end() ? nullptr : &it->second;
}

void AtmDisplay::RecomputeOwnership() {
  // Per-pixel owner: the visible window with the highest z covering it. This
  // mirrors the hardware's descriptor match; cost is charged to descriptor
  // updates, not to the media path.
  std::fill(owner_.begin(), owner_.end(), atm::kVciUnassigned);
  std::vector<std::pair<atm::Vci, const WindowDescriptor*>> ordered;
  ordered.reserve(descriptors_.size());
  for (const auto& [vci, desc] : descriptors_) {
    if (desc.visible) {
      ordered.emplace_back(vci, &desc);
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.second->z < b.second->z; });
  for (const auto& [vci, desc] : ordered) {
    const int x0 = std::max(0, desc->x);
    const int y0 = std::max(0, desc->y);
    const int x1 = std::min(width_, desc->x + desc->width);
    const int y1 = std::min(height_, desc->y + desc->height);
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        owner_[static_cast<size_t>(y) * width_ + x] = vci;
      }
    }
  }
}

void AtmDisplay::OnCell(const atm::Cell& cell) {
  auto sdu = reassemblers_[cell.vci].Push(cell);
  if (!sdu.has_value()) {
    return;
  }
  auto packet = TilePacket::Parse(*sdu);
  if (!packet.has_value()) {
    ++decode_errors_;
    return;
  }
  OnPacket(cell.vci, *packet);
}

void AtmDisplay::OnPacket(atm::Vci vci, const TilePacket& packet) {
  auto desc_it = descriptors_.find(vci);
  if (desc_it == descriptors_.end() || !desc_it->second.visible) {
    tiles_clipped_ += static_cast<int64_t>(packet.tiles.size());
    return;
  }
  const WindowDescriptor& desc = desc_it->second;
  tile_latency_.Add(static_cast<double>(sim_->now() - packet.capture_ts));
  if (packet_cb_) {
    packet_cb_(vci, packet.frame_no, packet.capture_ts);
  }

  // Frame-completion tracking: a new frame number closes the previous frame.
  FrameTrack& track = frame_track_[vci];
  if (track.any && packet.frame_no != track.frame_no) {
    frame_completion_latency_.Add(static_cast<double>(sim_->now() - track.capture_ts));
    ++frames_completed_;
    track.any = false;
  }
  track.frame_no = packet.frame_no;
  track.capture_ts = packet.capture_ts;
  track.any = true;

  for (const Tile& src : packet.tiles) {
    Tile tile = src;
    if (!DecompressTileInPlace(&tile)) {
      ++decode_errors_;
      continue;
    }
    // Clip against the window, then blit only pixels this VC owns.
    if (tile.x + kTileDim <= 0 || tile.y + kTileDim <= 0 || tile.x >= desc.width ||
        tile.y >= desc.height) {
      ++tiles_clipped_;
      continue;
    }
    ++tiles_blitted_;
    for (int row = 0; row < kTileDim; ++row) {
      for (int col = 0; col < kTileDim; ++col) {
        const int wx = tile.x + col;  // window coordinates
        const int wy = tile.y + row;
        if (wx >= desc.width || wy >= desc.height) {
          continue;  // clipped by the descriptor
        }
        const int sx = desc.x + wx;  // screen coordinates
        const int sy = desc.y + wy;
        if (sx < 0 || sx >= width_ || sy < 0 || sy >= height_) {
          continue;
        }
        if (owner_[static_cast<size_t>(sy) * width_ + sx] != vci) {
          continue;  // occluded by a higher window
        }
        framebuffer_[static_cast<size_t>(sy) * width_ + sx] =
            tile.data[static_cast<size_t>(row) * kTileDim + col];
        ++pixels_drawn_;
      }
    }
  }
}

WindowManager::WindowManager(AtmDisplay* display) : display_(display) {}

void WindowManager::CreateWindow(atm::Vci vci, int x, int y, int w, int h) {
  WindowDescriptor desc;
  desc.x = x;
  desc.y = y;
  desc.width = w;
  desc.height = h;
  desc.z = next_z_++;
  display_->SetDescriptor(vci, desc);
  ++operations_;
}

bool WindowManager::MoveWindow(atm::Vci vci, int x, int y) {
  const WindowDescriptor* cur = display_->GetDescriptor(vci);
  if (cur == nullptr) {
    return false;
  }
  WindowDescriptor desc = *cur;
  desc.x = x;
  desc.y = y;
  display_->SetDescriptor(vci, desc);
  ++operations_;
  return true;
}

bool WindowManager::ResizeWindow(atm::Vci vci, int w, int h) {
  const WindowDescriptor* cur = display_->GetDescriptor(vci);
  if (cur == nullptr) {
    return false;
  }
  WindowDescriptor desc = *cur;
  desc.width = w;
  desc.height = h;
  display_->SetDescriptor(vci, desc);
  ++operations_;
  return true;
}

bool WindowManager::RaiseWindow(atm::Vci vci) {
  const WindowDescriptor* cur = display_->GetDescriptor(vci);
  if (cur == nullptr) {
    return false;
  }
  WindowDescriptor desc = *cur;
  desc.z = next_z_++;
  display_->SetDescriptor(vci, desc);
  ++operations_;
  return true;
}

bool WindowManager::LowerWindow(atm::Vci vci) {
  const WindowDescriptor* cur = display_->GetDescriptor(vci);
  if (cur == nullptr) {
    return false;
  }
  WindowDescriptor desc = *cur;
  desc.z = 0;
  display_->SetDescriptor(vci, desc);
  ++operations_;
  return true;
}

bool WindowManager::IconifyWindow(atm::Vci vci) {
  const WindowDescriptor* cur = display_->GetDescriptor(vci);
  if (cur == nullptr) {
    return false;
  }
  WindowDescriptor desc = *cur;
  desc.visible = false;
  display_->SetDescriptor(vci, desc);
  ++operations_;
  return true;
}

bool WindowManager::RestoreWindow(atm::Vci vci) {
  const WindowDescriptor* cur = display_->GetDescriptor(vci);
  if (cur == nullptr) {
    return false;
  }
  WindowDescriptor desc = *cur;
  desc.visible = true;
  display_->SetDescriptor(vci, desc);
  ++operations_;
  return true;
}

bool WindowManager::DestroyWindow(atm::Vci vci) {
  if (!display_->RemoveDescriptor(vci)) {
    return false;
  }
  ++operations_;
  return true;
}

}  // namespace pegasus::dev
