// The ATM camera (§2.1, Figure 2).
//
// "The ATM camera directly produces digital video as a stream of ATM cells."
// The model scans a synthetic frame line by line at the CCD line rate; every
// eight buffered lines become a row of 8x8 tiles, optionally compressed, and
// are shipped immediately in AAL5 frames. This is what cuts source latency
// from a frame time (33-40 ms) to a tile time (tens of microseconds) — the
// subject of experiment E01, which compares against kWholeFrame mode (a
// conventional frame-grabber that cannot transmit until the frame is done).
#ifndef PEGASUS_SRC_DEVICES_CAMERA_H_
#define PEGASUS_SRC_DEVICES_CAMERA_H_

#include <cstdint>
#include <optional>

#include "src/atm/endpoint.h"
#include "src/devices/compression.h"
#include "src/devices/frame_source.h"
#include "src/devices/tile.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace pegasus::dev {

class AtmCamera {
 public:
  enum class Emission {
    kTiles,       // ship each 8-line band as soon as it is digitised
    kWholeFrame,  // buffer the whole frame first (conventional baseline)
  };

  struct Config {
    int width = 160;
    int height = 120;
    int fps = 25;
    CompressionMode compression = CompressionMode::kRaw;
    int jpeg_quality = 60;
    Emission emission = Emission::kTiles;
    // Tiles per AAL5 frame (a band of w/8 tiles is split as needed).
    int tiles_per_packet = 10;
    // Cell pacing rate; 0 = line rate of the uplink.
    int64_t pace_bps = 0;
    double content_noise = 0.1;
  };

  AtmCamera(sim::Simulator* sim, atm::Endpoint* endpoint, Config config);

  // Starts streaming on `data_vci` (from the established data VC).
  void Start(atm::Vci data_vci);
  void Stop();
  bool running() const { return running_; }

  // Adds a further output circuit: every packet is also RE-SENT on `vci`,
  // costing the source O(outputs). The real point-to-multipoint tap (e.g.
  // display + recording from one capture) is a multicast stream contract —
  // StreamBuilder::ToMany — where the camera sends once and the switches
  // replicate only at tree branches; see examples/camera_tap.cpp. This
  // source-side fallback remains for endpoints without signalling access.
  void AddOutput(atm::Vci vci) { extra_vcis_.push_back(vci); }

  const Config& config() const { return config_; }
  // Re-shapes the outgoing cell stream; stream admission sets this to the
  // granted bandwidth so the camera never bursts past its reservation.
  void set_pace_bps(int64_t bps) { config_.pace_bps = bps; }
  uint32_t frames_captured() const { return frames_captured_; }
  int64_t packets_sent() const { return packets_sent_; }
  int64_t bytes_sent() const { return bytes_sent_; }
  // Payload bytes per second averaged since Start.
  double average_bandwidth_bps(sim::TimeNs now) const;

 private:
  void BeginFrame();
  // Digitisation of one 8-line band completes.
  void BandReady(int band);
  void EmitTiles(std::vector<Tile> tiles, uint32_t frame_no, sim::TimeNs capture_ts);

  sim::Simulator* sim_;
  atm::Endpoint* endpoint_;
  Config config_;
  atm::Vci data_vci_ = atm::kVciUnassigned;
  std::vector<atm::Vci> extra_vcis_;
  bool running_ = false;
  FrameSource source_;
  Frame current_frame_;
  sim::TimeNs frame_started_at_ = 0;
  // Whole-frame mode: bands held back until the frame scan completes, each
  // keeping its own digitisation timestamp (rolling shutter).
  struct HeldBand {
    std::vector<Tile> tiles;
    sim::TimeNs digitised_at;
  };
  std::vector<HeldBand> held_bands_;
  uint32_t frames_captured_ = 0;
  int64_t packets_sent_ = 0;
  int64_t bytes_sent_ = 0;
  sim::TimeNs started_at_ = 0;
};

}  // namespace pegasus::dev

#endif  // PEGASUS_SRC_DEVICES_CAMERA_H_
