#include "src/devices/compression.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace pegasus::dev {

namespace {

// Standard JPEG luminance quantisation table.
constexpr std::array<int, 64> kLuminanceQ = {
    16, 11, 10, 16, 24,  40,  51,  61,   // row 0
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99,
};

// Zig-zag scan order for an 8x8 block.
constexpr std::array<int, 64> kZigZag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,   //
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,  //
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,  //
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
};

// Quality in [1, 100] -> table scale factor, as in libjpeg.
int ScaleFor(int quality) {
  quality = std::clamp(quality, 1, 100);
  return quality < 50 ? 5000 / quality : 200 - quality * 2;
}

void ForwardDct(const double in[64], double out[64]) {
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double sum = 0.0;
      for (int x = 0; x < 8; ++x) {
        for (int y = 0; y < 8; ++y) {
          sum += in[x * 8 + y] * std::cos((2 * x + 1) * u * M_PI / 16.0) *
                 std::cos((2 * y + 1) * v * M_PI / 16.0);
        }
      }
      const double cu = u == 0 ? M_SQRT1_2 : 1.0;
      const double cv = v == 0 ? M_SQRT1_2 : 1.0;
      out[u * 8 + v] = 0.25 * cu * cv * sum;
    }
  }
}

void InverseDct(const double in[64], double out[64]) {
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      double sum = 0.0;
      for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
          const double cu = u == 0 ? M_SQRT1_2 : 1.0;
          const double cv = v == 0 ? M_SQRT1_2 : 1.0;
          sum += cu * cv * in[u * 8 + v] * std::cos((2 * x + 1) * u * M_PI / 16.0) *
                 std::cos((2 * y + 1) * v * M_PI / 16.0);
        }
      }
      out[x * 8 + y] = 0.25 * sum;
    }
  }
}

}  // namespace

std::vector<uint8_t> CompressTile(const std::vector<uint8_t>& pixels, int quality) {
  const int scale = ScaleFor(quality);
  double block[64];
  for (int i = 0; i < 64; ++i) {
    block[i] = static_cast<double>(pixels[static_cast<size_t>(i)]) - 128.0;
  }
  double freq[64];
  ForwardDct(block, freq);

  // Quantise and zig-zag.
  std::array<int16_t, 64> q{};
  for (int i = 0; i < 64; ++i) {
    int qv = (kLuminanceQ[static_cast<size_t>(i)] * scale + 50) / 100;
    qv = std::clamp(qv, 1, 255 * 8);
    q[static_cast<size_t>(i)] =
        static_cast<int16_t>(std::lround(freq[i] / static_cast<double>(qv)));
  }

  // Entropy-code the zig-zag sequence as (run-of-zeros, value) tokens: one
  // run byte followed by the value as a zig-zag varint (1 byte for |v| < 64,
  // which covers almost every quantised coefficient). The trailing zero run
  // is implicit: the decoder pads with zeros.
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(quality));
  int run = 0;
  for (int i = 0; i < 64; ++i) {
    const int16_t v = q[static_cast<size_t>(kZigZag[static_cast<size_t>(i)])];
    if (v == 0 && run < 255) {
      ++run;
      continue;
    }
    out.push_back(static_cast<uint8_t>(run));
    // Zig-zag sign fold, in unsigned arithmetic (shifting a negative
    // int16_t left is undefined); the bit pattern is identical mod 2^16.
    uint16_t u = static_cast<uint16_t>(
        (static_cast<uint16_t>(v) << 1) ^ static_cast<uint16_t>(v >> 15));
    while (u >= 0x80) {
      out.push_back(static_cast<uint8_t>(u | 0x80));
      u >>= 7;
    }
    out.push_back(static_cast<uint8_t>(u));
    run = 0;
  }
  return out;
}

std::optional<std::vector<uint8_t>> DecompressTile(const std::vector<uint8_t>& data) {
  if (data.empty()) {
    return std::nullopt;
  }
  const int quality = data[0];
  const int scale = ScaleFor(quality);
  std::array<int16_t, 64> zz{};
  size_t pos = 1;
  int idx = 0;
  while (pos < data.size() && idx < 64) {
    const int run = data[pos++];
    // Zig-zag varint value.
    uint16_t u = 0;
    int shift = 0;
    bool terminated = false;
    while (pos < data.size() && shift <= 14) {
      const uint8_t byte = data[pos++];
      u |= static_cast<uint16_t>(byte & 0x7F) << shift;
      shift += 7;
      if ((byte & 0x80) == 0) {
        terminated = true;
        break;
      }
    }
    if (!terminated) {
      return std::nullopt;
    }
    const auto value = static_cast<int16_t>((u >> 1) ^ static_cast<uint16_t>(-(u & 1)));
    idx += run;
    if (idx >= 64) {
      return std::nullopt;
    }
    zz[static_cast<size_t>(idx)] = value;
    ++idx;
  }
  if (pos != data.size()) {
    return std::nullopt;
  }

  // De-zig-zag: scan entry i corresponds to natural position kZigZag[i].
  double natural[64] = {0};
  for (int i = 0; i < 64; ++i) {
    int qv = (kLuminanceQ[static_cast<size_t>(kZigZag[static_cast<size_t>(i)])] * scale + 50) /
             100;
    qv = std::clamp(qv, 1, 255 * 8);
    natural[kZigZag[static_cast<size_t>(i)]] =
        static_cast<double>(zz[static_cast<size_t>(i)]) * static_cast<double>(qv);
  }
  double block[64];
  InverseDct(natural, block);
  std::vector<uint8_t> pixels(64);
  for (int i = 0; i < 64; ++i) {
    pixels[static_cast<size_t>(i)] =
        static_cast<uint8_t>(std::clamp(std::lround(block[i] + 128.0), 0L, 255L));
  }
  return pixels;
}

void CompressTileInPlace(Tile* tile, CompressionMode mode, int quality) {
  if (mode == CompressionMode::kRaw || tile->compressed) {
    return;
  }
  tile->data = CompressTile(tile->data, quality);
  tile->compressed = true;
}

bool DecompressTileInPlace(Tile* tile) {
  if (!tile->compressed) {
    return tile->data.size() == kTilePixels;
  }
  auto pixels = DecompressTile(tile->data);
  if (!pixels.has_value()) {
    return false;
  }
  tile->data = std::move(*pixels);
  tile->compressed = false;
  return true;
}

}  // namespace pegasus::dev
