// Synthetic video content (the stand-in for a CCD looking at the world).
//
// Deterministic moving-pattern frames: smooth gradients with a moving bright
// disc. Smooth content compresses well under the MJPEG codec, textured noise
// poorly — the mix is tunable so bandwidth experiments can sweep content
// complexity.
#ifndef PEGASUS_SRC_DEVICES_FRAME_SOURCE_H_
#define PEGASUS_SRC_DEVICES_FRAME_SOURCE_H_

#include <cstdint>

#include "src/devices/tile.h"
#include "src/sim/random.h"

namespace pegasus::dev {

class FrameSource {
 public:
  // `noise` in [0, 1]: fraction of per-pixel random texture mixed into the
  // smooth pattern (0 = clean synthetic scene, 1 = white noise).
  FrameSource(int width, int height, double noise = 0.1, uint64_t seed = 42);

  int width() const { return width_; }
  int height() const { return height_; }

  // Produces frame number `n` (deterministic in n).
  Frame Render(uint32_t frame_no);

 private:
  int width_;
  int height_;
  double noise_;
  sim::Rng rng_;
};

}  // namespace pegasus::dev

#endif  // PEGASUS_SRC_DEVICES_FRAME_SOURCE_H_
