#include "src/devices/camera.h"

namespace pegasus::dev {

AtmCamera::AtmCamera(sim::Simulator* sim, atm::Endpoint* endpoint, Config config)
    : sim_(sim),
      endpoint_(endpoint),
      config_(config),
      source_(config.width, config.height, config.content_noise) {}

void AtmCamera::Start(atm::Vci data_vci) {
  if (running_) {
    return;
  }
  data_vci_ = data_vci;
  running_ = true;
  started_at_ = sim_->now();
  BeginFrame();
}

void AtmCamera::Stop() { running_ = false; }

double AtmCamera::average_bandwidth_bps(sim::TimeNs now) const {
  const sim::DurationNs elapsed = now - started_at_;
  if (elapsed <= 0) {
    return 0.0;
  }
  return static_cast<double>(bytes_sent_) * 8e9 / static_cast<double>(elapsed);
}

void AtmCamera::BeginFrame() {
  if (!running_) {
    return;
  }
  current_frame_ = source_.Render(frames_captured_);
  current_frame_.capture_ts = sim_->now();
  frame_started_at_ = sim_->now();
  held_bands_.clear();
  // The CCD digitises scan lines continuously through the frame period; a
  // band of eight lines is ready after 8 line times.
  const sim::DurationNs frame_period = sim::Seconds(1) / config_.fps;
  const sim::DurationNs line_time = frame_period / config_.height;
  const int bands = (config_.height + kTileDim - 1) / kTileDim;
  for (int band = 0; band < bands; ++band) {
    const sim::DurationNs ready_at = line_time * (band + 1) * kTileDim;
    sim_->ScheduleAfter(ready_at, [this, band]() { BandReady(band); });
  }
  sim_->ScheduleAfter(frame_period, [this]() {
    ++frames_captured_;
    BeginFrame();
  });
}

void AtmCamera::BandReady(int band) {
  if (!running_) {
    return;
  }
  // The eight lines of this band were digitised just now (rolling shutter):
  // their capture timestamp is the band-ready time, in both emission modes.
  const sim::TimeNs band_ts = sim_->now();
  const int ty = band * kTileDim;
  std::vector<Tile> tiles;
  for (int tx = 0; tx < config_.width; tx += kTileDim) {
    Tile tile = current_frame_.ExtractTile(tx, ty);
    CompressTileInPlace(&tile, config_.compression, config_.jpeg_quality);
    tiles.push_back(std::move(tile));
  }
  if (config_.emission == Emission::kTiles) {
    EmitTiles(std::move(tiles), current_frame_.frame_no, band_ts);
    return;
  }
  // Whole-frame mode: hold every band until the last one is digitised, then
  // ship them all — the frame-grabber behaviour the paper contrasts with.
  held_bands_.push_back(HeldBand{std::move(tiles), band_ts});
  const int bands = (config_.height + kTileDim - 1) / kTileDim;
  if (band == bands - 1) {
    for (HeldBand& held : held_bands_) {
      EmitTiles(std::move(held.tiles), current_frame_.frame_no, held.digitised_at);
    }
    held_bands_.clear();
  }
}

void AtmCamera::EmitTiles(std::vector<Tile> tiles, uint32_t frame_no, sim::TimeNs capture_ts) {
  TilePacket packet;
  packet.frame_no = frame_no;
  packet.capture_ts = capture_ts;
  auto ship = [this](const TilePacket& p) {
    std::vector<uint8_t> payload = p.Serialize();
    bytes_sent_ += static_cast<int64_t>(payload.size());
    ++packets_sent_;
    endpoint_->SendFrame(data_vci_, payload, config_.pace_bps);
    for (atm::Vci extra : extra_vcis_) {
      endpoint_->SendFrame(extra, payload, config_.pace_bps);
    }
  };
  for (Tile& tile : tiles) {
    packet.tiles.push_back(std::move(tile));
    if (static_cast<int>(packet.tiles.size()) >= config_.tiles_per_packet) {
      ship(packet);
      packet.tiles.clear();
    }
  }
  if (!packet.tiles.empty()) {
    ship(packet);
  }
}

}  // namespace pegasus::dev
