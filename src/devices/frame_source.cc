#include "src/devices/frame_source.h"

#include <algorithm>
#include <cmath>

namespace pegasus::dev {

FrameSource::FrameSource(int width, int height, double noise, uint64_t seed)
    : width_(width), height_(height), noise_(noise), rng_(seed) {}

Frame FrameSource::Render(uint32_t frame_no) {
  Frame frame(width_, height_);
  frame.frame_no = frame_no;
  // A diagonal gradient drifting over time plus a circling bright disc.
  const double phase = frame_no * 0.12;
  const double cx = width_ / 2.0 + std::cos(phase) * width_ / 4.0;
  const double cy = height_ / 2.0 + std::sin(phase) * height_ / 4.0;
  const double radius = std::min(width_, height_) / 6.0;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      double v = 96.0 + 48.0 * std::sin((x + y) * 0.02 + phase);
      const double dx = x - cx;
      const double dy = y - cy;
      if (dx * dx + dy * dy < radius * radius) {
        v += 96.0;
      }
      if (noise_ > 0.0) {
        v = (1.0 - noise_) * v + noise_ * static_cast<double>(rng_.UniformInt(0, 255));
      }
      frame.set(x, y, static_cast<uint8_t>(std::clamp(v, 0.0, 255.0)));
    }
  }
  return frame;
}

}  // namespace pegasus::dev
